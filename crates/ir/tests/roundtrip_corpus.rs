//! Parser/printer round-trip over real loopgen corpora.
//!
//! The compile service caches on a content hash of the canonical loop text,
//! so `parse(print(l)) == l` and print-is-a-fixed-point must hold for every
//! loop the generators can emit — not just the hand-built property shapes.
//! These tests sweep the full calibrated corpus plus the extended families
//! and seed/trip variations.

use proptest::prelude::*;
use vliw_ir::{format_loop_full, parse_loop, verify_loop};
use vliw_loopgen::{corpus, corpus_with, CorpusSpec};

#[test]
fn full_paper_corpus_round_trips() {
    for (i, l) in corpus().iter().enumerate() {
        let text = format_loop_full(l);
        let back = parse_loop(&text).unwrap_or_else(|e| panic!("loop {i} ({}): {e}", l.name));
        assert_eq!(&back, l, "loop {i} ({}) reparse differs", l.name);
        assert_eq!(
            format_loop_full(&back),
            text,
            "loop {i} ({}) print is not a fixed point",
            l.name
        );
    }
}

#[test]
fn extended_families_round_trip() {
    let spec = CorpusSpec {
        n: 64,
        ..CorpusSpec::extended()
    };
    for l in corpus_with(&spec) {
        verify_loop(&l).expect("generated loop verifies");
        let text = format_loop_full(&l);
        let back = parse_loop(&text).unwrap_or_else(|e| panic!("{}: {e}", l.name));
        assert_eq!(back, l, "{}", l.name);
    }
}

#[test]
fn formatting_noise_parses_to_the_same_loop() {
    for l in corpus().iter().take(20) {
        let text = format_loop_full(l);
        // Comment lines, trailing comments, blank lines and indentation are
        // all erased by the parser, so hashes over re-printed text agree.
        let noisy: String = text
            .lines()
            .map(|line| format!("  {line} ; trailing\n\n"))
            .collect();
        let noisy = format!("; header comment\n{noisy}");
        let back = parse_loop(&noisy).unwrap_or_else(|e| panic!("{}: {e}", l.name));
        assert_eq!(&back, l, "{}", l.name);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Any seed/size/trip-range variation of the generator stays inside the
    /// canonical grammar.
    #[test]
    fn generator_variations_round_trip(seed in 0u64..1_000, n in 1usize..12, lo in 8u32..64) {
        let spec = CorpusSpec { n, seed, trip_range: (lo, lo + 64), ..CorpusSpec::default() };
        for l in corpus_with(&spec) {
            let text = format_loop_full(&l);
            let back = parse_loop(&text)
                .map_err(|e| TestCaseError::fail(format!("{}: {e}", l.name)))?;
            prop_assert_eq!(&back, &l);
            prop_assert_eq!(format_loop_full(&back), text);
        }
    }
}
