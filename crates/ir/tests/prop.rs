//! Property tests for the IR: builder output is always verifiable, printing
//! never panics, and structural queries are mutually consistent.

use proptest::prelude::*;
use vliw_ir::{format_loop_full, parse_loop, printer, verify_loop, LoopBuilder, RegClass, VReg};

#[derive(Debug, Clone)]
enum Step {
    Const(u8),
    Add(u8, u8),
    Mul(u8, u8),
    Load(u8),
    Store(u8, u8),
    Acc(u8),
}

fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..20u8).prop_map(Step::Const),
        any::<(u8, u8)>().prop_map(|(a, b)| Step::Add(a, b)),
        any::<(u8, u8)>().prop_map(|(a, b)| Step::Mul(a, b)),
        (0..3u8).prop_map(Step::Load),
        any::<(u8, u8)>().prop_map(|(a, b)| Step::Store(a, b)),
        any::<u8>().prop_map(Step::Acc),
    ]
}

fn build(steps: &[Step], trip: u32) -> vliw_ir::Loop {
    let mut b = LoopBuilder::new("p");
    let x = b.array("x", RegClass::Float, 4 * trip as usize + 8);
    let acc = b.live_in_float_val("acc", 0.0);
    let seed = b.live_in_float_val("seed", 2.0);
    let mut pool = vec![acc, seed];
    let pick = |i: u8, pool: &[VReg]| pool[i as usize % pool.len()];
    for s in steps {
        match s {
            Step::Const(k) => pool.push(b.fconst_new(*k as f64 + 0.5)),
            Step::Add(i, j) => {
                let (p, q) = (pick(*i, &pool), pick(*j, &pool));
                pool.push(b.fadd(p, q));
            }
            Step::Mul(i, j) => {
                let (p, q) = (pick(*i, &pool), pick(*j, &pool));
                pool.push(b.fmul(p, q));
            }
            Step::Load(off) => pool.push(b.load(x, *off as i64, 4)),
            Step::Store(i, slot) => {
                let v = pick(*i, &pool);
                b.store(x, 3, 4, v);
                let _ = slot;
            }
            Step::Acc(i) => {
                let v = pick(*i, &pool);
                b.fadd_into(acc, acc, v);
            }
        }
    }
    b.live_out(acc);
    b.finish(trip)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn builder_always_verifies(steps in proptest::collection::vec(step(), 0..40), trip in 1u32..16) {
        let l = build(&steps, trip);
        prop_assert!(verify_loop(&l).is_ok());
    }

    #[test]
    fn printer_never_panics_and_covers_ops(steps in proptest::collection::vec(step(), 1..30), trip in 1u32..8) {
        let l = build(&steps, trip);
        let text = printer::format_loop(&l);
        prop_assert!(text.lines().count() >= l.n_ops());
    }

    #[test]
    fn defs_and_uses_partition_mentions(steps in proptest::collection::vec(step(), 1..30), trip in 1u32..8) {
        let l = build(&steps, trip);
        for v in (0..l.n_vregs() as u32).map(VReg) {
            let defs = l.defs_of(v);
            let uses = l.uses_of(v);
            for d in &defs {
                prop_assert!(l.op(*d).defines(v));
            }
            for u in &uses {
                prop_assert!(l.op(*u).uses_reg(v));
            }
        }
    }

    #[test]
    fn text_format_round_trips(steps in proptest::collection::vec(step(), 0..30), trip in 1u32..8) {
        let l = build(&steps, trip);
        let text = format_loop_full(&l);
        let back = parse_loop(&text).map_err(|e| TestCaseError::fail(format!("{e}\n{text}")))?;
        prop_assert_eq!(back, l);
    }

    #[test]
    fn carried_regs_are_defined_in_body(steps in proptest::collection::vec(step(), 1..30), trip in 1u32..8) {
        let l = build(&steps, trip);
        for v in l.carried_regs() {
            prop_assert!(!l.defs_of(v).is_empty());
        }
    }
}
