//! Multi-block functions over a shared register namespace.
//!
//! The paper's framework "is applicable to entire programs … since we could
//! easily use both non-loop and loop code to build our register component
//! graph and our greedy method works on a function basis" (§6.3, §7). This
//! module provides the function representation that enables that: a list of
//! single-block regions (pipelined loops and straight-line blocks) whose
//! operations draw virtual registers from one shared table, so one RCG —
//! and one bank assignment — can span them all.
//!
//! Cross-block dataflow is modelled at the partitioning level: a value
//! defined in an earlier block becomes a live-in of later blocks (with a
//! synthetic initial value, so each block remains independently simulable;
//! true inter-block value flow is outside the paper's experiments, which
//! measure schedule length, not end-to-end function output).

use crate::builder::LoopBuilder;
use crate::looprep::{InitVal, Loop};
use crate::reg::{RegClass, VReg};
use crate::verify::{verify_loop, VerifyError};

/// A function: named single-block regions over one register namespace.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// The regions, in layout order. Every block's register table is the
    /// full shared table (identical length and classes across blocks).
    pub blocks: Vec<Loop>,
}

impl Function {
    /// Registers in the shared namespace.
    pub fn n_vregs(&self) -> usize {
        self.blocks.first().map_or(0, |b| b.n_vregs())
    }

    /// Verify every block and the shared-table invariant.
    pub fn verify(&self) -> Result<(), VerifyError> {
        for b in &self.blocks {
            verify_loop(b)?;
        }
        if let Some(first) = self.blocks.first() {
            for b in &self.blocks[1..] {
                if b.vreg_classes != first.vreg_classes {
                    // Represent as a register-range error on the block.
                    return Err(VerifyError::LiveRegOutOfRange(VReg(
                        first.vreg_classes.len() as u32,
                    )));
                }
            }
        }
        Ok(())
    }

    /// Total static operations across blocks.
    pub fn n_ops(&self) -> usize {
        self.blocks.iter().map(|b| b.n_ops()).sum()
    }
}

/// Builds a [`Function`] block by block, threading the shared register and
/// array tables through.
#[derive(Debug)]
pub struct FunctionBuilder {
    name: String,
    /// Prototype builder carrying the shared tables; never emits ops itself.
    proto: LoopBuilder,
    /// Which shared registers have been defined by an earlier block.
    blocks: Vec<Loop>,
}

impl FunctionBuilder {
    /// Start a function.
    pub fn new(name: impl Into<String>) -> Self {
        FunctionBuilder {
            name: name.into(),
            proto: LoopBuilder::new("<shared>"),
            blocks: Vec::new(),
        }
    }

    /// Declare a function-wide array (visible to all subsequent blocks).
    pub fn array(
        &mut self,
        name: impl Into<String>,
        class: RegClass,
        len: usize,
    ) -> crate::ArrayId {
        self.proto.array(name, class, len)
    }

    /// Declare a function-wide live-in float (a parameter or global).
    pub fn live_in_float_val(&mut self, name: &str, val: f64) -> VReg {
        self.proto.live_in_float_val(name, val)
    }

    /// Declare a function-wide live-in integer.
    pub fn live_in_int_val(&mut self, name: &str, val: i64) -> VReg {
        self.proto.live_in_int_val(name, val)
    }

    /// Append a block: `depth` is its loop-nesting depth (1 = function
    /// top-level straight-line code or an outermost loop body), `trip` its
    /// iteration count (1 for straight-line code). The closure populates the
    /// block through an ordinary [`LoopBuilder`] seeded with the shared
    /// tables; registers and arrays it creates join the shared namespace.
    pub fn block(
        &mut self,
        name: impl Into<String>,
        depth: u32,
        trip: u32,
        f: impl FnOnce(&mut LoopBuilder),
    ) {
        let mut b = self.proto.clone();
        b.set_name(name);
        b.nesting(depth);
        f(&mut b);
        // Values defined here become live-ins of later blocks (synthetic
        // seeds keep each block self-simulable).
        let defined: Vec<VReg> = b.ops().iter().filter_map(|o| o.def).collect();
        let block_loop = b.clone().finish(trip);
        debug_assert!(verify_loop(&block_loop).is_ok());
        self.blocks.push(block_loop);
        // Absorb the (possibly grown) tables back into the prototype, minus
        // the block's op stream.
        b.clear_ops();
        self.proto = b;
        for v in defined {
            if !self.proto.is_live_in(v) {
                let init = match self.proto.class_of(v) {
                    RegClass::Int => InitVal::Int(1),
                    RegClass::Float => InitVal::float(1.0),
                };
                self.proto.add_live_in(v, init);
            }
        }
    }

    /// Finalise: pad every block to the full shared register/array tables.
    pub fn finish(self) -> Function {
        let classes = self.proto.classes().to_vec();
        let arrays = self.proto.arrays_ref().to_vec();
        let mut blocks = self.blocks;
        for b in &mut blocks {
            b.vreg_classes = classes.clone();
            b.arrays = arrays.clone();
        }
        let f = Function {
            name: self.name,
            blocks,
        };
        debug_assert!(f.verify().is_ok());
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Opcode;

    /// Two loops sharing an invariant multiplier, plus a straight-line
    /// epilogue using a value from the first loop.
    fn sample() -> Function {
        let mut f = FunctionBuilder::new("f");
        let a = f.live_in_float_val("a", 2.0);
        let x = f.array("x", RegClass::Float, 128);
        let y = f.array("y", RegClass::Float, 128);
        let mut s_out = None;
        f.block("loop1", 2, 32, |b| {
            let s = b.live_in_float_val("s", 0.0);
            let xv = b.load(x, 0, 1);
            let p = b.fmul(a, xv);
            b.fadd_into(s, s, p);
            b.live_out(s);
            s_out = Some(s);
        });
        f.block("loop2", 2, 32, |b| {
            let yv = b.load(y, 0, 1);
            let q = b.fmul(a, yv);
            b.store(y, 0, 1, q);
        });
        let s = s_out.unwrap();
        f.block("epilogue", 1, 1, |b| {
            let t = b.fmul(s, a);
            b.store(x, 0, 0, t);
        });
        f.finish()
    }

    #[test]
    fn blocks_share_the_register_table() {
        let f = sample();
        f.verify().unwrap();
        assert_eq!(f.blocks.len(), 3);
        let n = f.n_vregs();
        assert!(f.blocks.iter().all(|b| b.n_vregs() == n));
    }

    #[test]
    fn cross_block_value_is_live_in_downstream() {
        let f = sample();
        let epilogue = &f.blocks[2];
        // The fmul in the epilogue uses s (defined in loop1) — it must be a
        // live-in of the epilogue block.
        let fmul = epilogue
            .ops
            .iter()
            .find(|o| o.opcode == Opcode::FMul)
            .unwrap();
        for &u in &fmul.uses {
            assert!(epilogue.is_live_in(u), "{u} not live-in of epilogue");
        }
    }

    #[test]
    fn shared_arrays_visible_everywhere() {
        let f = sample();
        for b in &f.blocks {
            assert_eq!(b.arrays.len(), 2);
        }
    }

    #[test]
    fn function_op_count_sums_blocks() {
        let f = sample();
        assert_eq!(f.n_ops(), 3 + 3 + 2);
    }
}
