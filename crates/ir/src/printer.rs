//! Textual rendering of loops and operations, for reports and debugging.

use crate::looprep::Loop;
use crate::op::{Opcode, Operation};
use std::fmt::Write as _;

/// Render a single operation as one line of pseudo-assembly.
pub fn format_op(l: &Loop, op: &Operation) -> String {
    let mut s = String::new();
    let _ = write!(s, "{:>5}  {:<5}", op.id.to_string(), op.opcode.mnemonic());
    if let Some(d) = op.def {
        let _ = write!(s, " {}", d);
    }
    match op.opcode {
        Opcode::Load => {
            let m = op.mem.expect("load has mem");
            let _ = write!(
                s,
                ", {}[{}{:+}i]",
                l.arrays[m.array.index()].name,
                m.offset,
                m.stride
            );
        }
        Opcode::Store => {
            let m = op.mem.expect("store has mem");
            let _ = write!(
                s,
                " {}[{}{:+}i], {}",
                l.arrays[m.array.index()].name,
                m.offset,
                m.stride,
                op.uses[0]
            );
        }
        Opcode::LoadImmInt => {
            let _ = write!(s, ", #{}", op.imm.unwrap_or(0));
        }
        Opcode::LoadImmFloat => {
            let _ = write!(s, ", #{}", op.fimm().unwrap_or(0.0));
        }
        _ => {
            for (k, u) in op.uses.iter().enumerate() {
                let sep = if k == 0 && op.def.is_none() { ' ' } else { ',' };
                let _ = write!(s, "{sep} {u}");
            }
            if let Some(imm) = op.imm {
                let _ = write!(s, ", #{imm}");
            }
        }
    }
    s
}

/// Render the whole loop body, header included.
pub fn format_loop(l: &Loop) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "loop {} (trip {}, depth {}, {} ops, {} vregs)",
        l.name,
        l.trip_count,
        l.nesting_depth,
        l.n_ops(),
        l.n_vregs()
    );
    if !l.live_in.is_empty() {
        let ins: Vec<String> = l.live_in.iter().map(|v| v.to_string()).collect();
        let _ = writeln!(s, "  live-in:  {}", ins.join(", "));
    }
    for op in &l.ops {
        let _ = writeln!(s, "  {}", format_op(l, op));
    }
    if !l.live_out.is_empty() {
        let outs: Vec<String> = l.live_out.iter().map(|v| v.to_string()).collect();
        let _ = writeln!(s, "  live-out: {}", outs.join(", "));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LoopBuilder;
    use crate::reg::RegClass;

    #[test]
    fn prints_all_ops() {
        let mut b = LoopBuilder::new("p");
        let x = b.array("x", RegClass::Float, 32);
        let a = b.live_in_float("a");
        let v = b.load(x, 0, 1);
        let m = b.fmul(a, v);
        b.store(x, 0, 1, m);
        let l = b.finish(32);
        let text = format_loop(&l);
        assert!(text.contains("load"));
        assert!(text.contains("fmul"));
        assert!(text.contains("store x[0+1i]"));
        assert!(text.contains("live-in"));
        assert_eq!(text.lines().count(), 2 + l.n_ops());
    }

    #[test]
    fn prints_immediates() {
        let mut b = LoopBuilder::new("imm");
        b.iconst_new(42);
        b.fconst_new(2.5);
        let l = b.finish(1);
        let text = format_loop(&l);
        assert!(text.contains("#42"));
        assert!(text.contains("#2.5"));
    }
}
