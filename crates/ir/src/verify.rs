//! Structural verification of [`Loop`] bodies.
//!
//! Every pass in the workspace assumes these invariants; the property tests
//! and the loop generator check them after every construction or rewrite.

use crate::looprep::Loop;
use crate::op::{Opcode, Operation};
use crate::reg::VReg;
use std::fmt;

/// A structural defect found in a [`Loop`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// `ops[i].id != i`.
    BadOpId(usize),
    /// An operation mentions a register outside the register table.
    RegOutOfRange(usize, VReg),
    /// A register is used but never defined and not live-in.
    UseWithoutDef(usize, VReg),
    /// Def class disagrees with the opcode's result class (or the array's
    /// class for loads).
    DefClassMismatch(usize),
    /// Operand arity is wrong for the opcode.
    BadArity(usize),
    /// A memory op lacks metadata, or a non-memory op has it.
    MemMetadata(usize),
    /// Memory metadata references an unknown array.
    ArrayOutOfRange(usize),
    /// An access walks outside the array over the loop's trip count.
    OutOfBounds(usize),
    /// `live_in` and `live_in_vals` have different lengths.
    LiveInVals,
    /// A live-in/live-out register is outside the register table.
    LiveRegOutOfRange(VReg),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::BadOpId(i) => write!(f, "op at index {i} has wrong id"),
            VerifyError::RegOutOfRange(i, v) => write!(f, "op {i} mentions unknown register {v}"),
            VerifyError::UseWithoutDef(i, v) => {
                write!(f, "op {i} uses {v}, which is neither defined nor live-in")
            }
            VerifyError::DefClassMismatch(i) => write!(f, "op {i} def class mismatch"),
            VerifyError::BadArity(i) => write!(f, "op {i} has wrong operand arity"),
            VerifyError::MemMetadata(i) => write!(f, "op {i} memory metadata inconsistent"),
            VerifyError::ArrayOutOfRange(i) => write!(f, "op {i} references unknown array"),
            VerifyError::OutOfBounds(i) => {
                write!(f, "op {i} walks outside its array over the trip count")
            }
            VerifyError::LiveInVals => write!(f, "live_in and live_in_vals lengths differ"),
            VerifyError::LiveRegOutOfRange(v) => write!(f, "live register {v} out of range"),
        }
    }
}

impl std::error::Error for VerifyError {}

fn arity_ok(op: &Operation) -> bool {
    let (defs, uses) = (op.def.is_some() as usize, op.uses.len());
    match op.opcode {
        Opcode::IntAlu | Opcode::IntMul | Opcode::IntDiv => defs == 1 && (1..=2).contains(&uses),
        Opcode::FAlu | Opcode::FMul | Opcode::FDiv => defs == 1 && uses == 2,
        Opcode::Load => defs == 1 && uses == 0,
        Opcode::Store => defs == 0 && uses == 1,
        Opcode::LoadImmInt | Opcode::LoadImmFloat => defs == 1 && uses == 0,
        Opcode::CopyInt | Opcode::CopyFloat => defs == 1 && uses == 1,
    }
}

/// Check every structural invariant of `l`.
pub fn verify_loop(l: &Loop) -> Result<(), VerifyError> {
    if l.live_in.len() != l.live_in_vals.len() {
        return Err(VerifyError::LiveInVals);
    }
    for &v in l.live_in.iter().chain(l.live_out.iter()) {
        if v.index() >= l.n_vregs() {
            return Err(VerifyError::LiveRegOutOfRange(v));
        }
    }

    // First-def position per register, for use-before-def (recurrence) legality.
    let mut defined = vec![false; l.n_vregs()];

    for (i, op) in l.ops.iter().enumerate() {
        if op.id.index() != i {
            return Err(VerifyError::BadOpId(i));
        }
        for v in op.regs() {
            if v.index() >= l.n_vregs() {
                return Err(VerifyError::RegOutOfRange(i, v));
            }
        }
        if !arity_ok(op) {
            return Err(VerifyError::BadArity(i));
        }
        if op.opcode.is_mem() != op.mem.is_some() {
            return Err(VerifyError::MemMetadata(i));
        }
        if let Some(m) = op.mem {
            let Some(info) = l.arrays.get(m.array.index()) else {
                return Err(VerifyError::ArrayOutOfRange(i));
            };
            // Endpoints of the affine access over the trip count.
            let last = m.offset + (l.trip_count.max(1) as i64 - 1) * m.stride;
            for idx in [m.offset, last] {
                if idx < 0 || idx as usize >= info.len {
                    return Err(VerifyError::OutOfBounds(i));
                }
            }
            // Loads/stores move values of the array's class.
            let class = info.class;
            let val_reg = match op.opcode {
                Opcode::Load => op.def,
                Opcode::Store => op.uses.first().copied(),
                _ => None,
            };
            if let Some(v) = val_reg {
                if l.class_of(v) != class {
                    return Err(VerifyError::DefClassMismatch(i));
                }
            }
        } else if let Some(d) = op.def {
            if l.class_of(d) != op.opcode.result_class() {
                return Err(VerifyError::DefClassMismatch(i));
            }
        }
        if let Some(d) = op.def {
            defined[d.index()] = true;
        }
    }

    // Every used register must be defined somewhere in the body or be live-in.
    // (A use before the def is legal — it reads the previous iteration.)
    for (i, op) in l.ops.iter().enumerate() {
        for &u in &op.uses {
            if !defined[u.index()] && !l.is_live_in(u) {
                return Err(VerifyError::UseWithoutDef(i, u));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LoopBuilder;
    use crate::reg::RegClass;

    #[test]
    fn detects_use_without_def() {
        let mut b = LoopBuilder::new("bad");
        let ghost = b.new_float();
        let g2 = b.new_float();
        b.fmul_into(g2, ghost, ghost);
        let l = b.finish(1);
        assert!(matches!(
            verify_loop(&l),
            Err(VerifyError::UseWithoutDef(_, _))
        ));
    }

    #[test]
    fn detects_out_of_bounds() {
        let mut b = LoopBuilder::new("oob");
        let x = b.array("x", RegClass::Float, 4);
        let v = b.load(x, 0, 1);
        b.store(x, 0, 1, v);
        let l = b.finish(100); // walks to x[99] but len == 4
        assert!(matches!(verify_loop(&l), Err(VerifyError::OutOfBounds(_))));
    }

    #[test]
    fn detects_mangled_ids() {
        let mut b = LoopBuilder::new("ids");
        let v = b.fconst_new(1.0);
        let w = b.fconst_new(2.0);
        b.fadd(v, w);
        let mut l = b.finish(1);
        l.ops.swap(0, 2);
        assert!(matches!(verify_loop(&l), Err(VerifyError::BadOpId(0))));
    }

    #[test]
    fn negative_offset_is_out_of_bounds() {
        let mut b = LoopBuilder::new("neg");
        let x = b.array("x", RegClass::Float, 16);
        let v = b.load(x, -1, 1);
        b.store(x, 0, 1, v);
        let l = b.finish(8);
        assert!(matches!(verify_loop(&l), Err(VerifyError::OutOfBounds(_))));
    }

    #[test]
    fn clean_loop_passes() {
        let mut b = LoopBuilder::new("ok");
        let x = b.array("x", RegClass::Float, 16);
        let v = b.load(x, 1, 1); // stencil-style offset
        let c = b.fconst_new(2.0);
        let d = b.fmul(v, c);
        b.store(x, 0, 1, d);
        let l = b.finish(15);
        verify_loop(&l).unwrap();
    }
}
