//! Textual parser for the loop format emitted by [`crate::printer`].
//!
//! Round-trips with the printer (`parse(format(l)) == l` up to live-in
//! initial values, which the text format carries explicitly), so loops can
//! be stored in files, diffed in golden tests, and written by hand.
//!
//! Grammar (one item per line, `;` comments allowed — `#` introduces
//! immediates):
//!
//! ```text
//! loop NAME (trip T, depth D, ...)           # header; counts are ignored
//!   array  NAME CLASS LEN                    # explicit array declaration
//!   vreg   vN CLASS                          # explicit register declaration
//!   live-in:  v0=1.5, v3=2                   # values give int/float inits
//!   opK  MNEMONIC operands                   # same shapes as the printer
//!   live-out: v4, v7
//! ```
//!
//! The printer does not emit `array`/`vreg` lines (it prints uses in
//! context), so [`format_loop_full`]
//! renders the self-contained form that parses back exactly.

use crate::looprep::{ArrayId, ArrayInfo, InitVal, Loop};
use crate::op::{AluKind, MemRef, OpId, Opcode, Operation};
use crate::reg::{RegClass, VReg};
use std::fmt::Write as _;

/// A parse failure with a line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending text.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Render a loop in the fully self-contained text form (declarations
/// included) that [`parse_loop`] accepts.
pub fn format_loop_full(l: &Loop) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "loop {} (trip {}, depth {})",
        l.name, l.trip_count, l.nesting_depth
    );
    for (i, a) in l.arrays.iter().enumerate() {
        let _ = writeln!(s, "  array {} {} {}", a.name, a.class, a.len);
        let _ = i;
    }
    for (i, c) in l.vreg_classes.iter().enumerate() {
        let _ = writeln!(s, "  vreg v{i} {c}");
    }
    if !l.live_in.is_empty() {
        let ins: Vec<String> = l
            .live_in
            .iter()
            .zip(&l.live_in_vals)
            .map(|(v, init)| match init {
                InitVal::Int(i) => format!("{v}={i}"),
                InitVal::Float(b) => format!("{v}={:?}", f64::from_bits(*b)),
            })
            .collect();
        let _ = writeln!(s, "  live-in: {}", ins.join(", "));
    }
    for op in &l.ops {
        let _ = writeln!(s, "  {}", format_op_full(op));
    }
    if !l.live_out.is_empty() {
        let outs: Vec<String> = l.live_out.iter().map(|v| v.to_string()).collect();
        let _ = writeln!(s, "  live-out: {}", outs.join(", "));
    }
    s
}

fn format_op_full(op: &Operation) -> String {
    let mut s = format!("{} {}", op.id, op.opcode.mnemonic());
    if let Some(m) = op.mem {
        // load: "opK load vD a0 off stride"; store: "opK store a0 off stride vS"
        match op.opcode {
            Opcode::Load => {
                let _ = write!(
                    s,
                    " {} a{} {} {}",
                    op.def.unwrap(),
                    m.array.0,
                    m.offset,
                    m.stride
                );
            }
            _ => {
                let _ = write!(
                    s,
                    " a{} {} {} {}",
                    m.array.0, m.offset, m.stride, op.uses[0]
                );
            }
        }
        return s;
    }
    if let Some(d) = op.def {
        let _ = write!(s, " {d}");
    }
    for u in &op.uses {
        let _ = write!(s, " {u}");
    }
    match op.opcode {
        Opcode::LoadImmInt => {
            let _ = write!(s, " #{}", op.imm.unwrap_or(0));
        }
        Opcode::LoadImmFloat => {
            let _ = write!(s, " #{:?}", op.fimm().unwrap_or(0.0));
        }
        _ => {
            if let Some(i) = op.imm {
                let _ = write!(s, " #{i}");
            }
        }
    }
    // ALU kind suffix for FAlu/IntAlu disambiguation.
    if matches!(op.opcode, Opcode::FAlu | Opcode::IntAlu) {
        let k = match op.alu {
            AluKind::Add => "+",
            AluKind::Sub => "-",
            AluKind::Mul => "*",
            AluKind::Div => "/",
        };
        let _ = write!(s, " !{k}");
    }
    s
}

fn parse_vreg(tok: &str, line: usize) -> Result<VReg, ParseError> {
    tok.strip_prefix('v')
        .and_then(|n| n.parse::<u32>().ok())
        .map(VReg)
        .ok_or_else(|| err(line, format!("expected register, got `{tok}`")))
}

fn parse_array_id(tok: &str, line: usize) -> Result<ArrayId, ParseError> {
    tok.strip_prefix('a')
        .and_then(|n| n.parse::<u32>().ok())
        .map(ArrayId)
        .ok_or_else(|| err(line, format!("expected array id, got `{tok}`")))
}

fn mnemonic_to_opcode(m: &str, line: usize) -> Result<Opcode, ParseError> {
    Ok(match m {
        "ialu" => Opcode::IntAlu,
        "imul" => Opcode::IntMul,
        "idiv" => Opcode::IntDiv,
        "falu" => Opcode::FAlu,
        "fmul" => Opcode::FMul,
        "fdiv" => Opcode::FDiv,
        "load" => Opcode::Load,
        "store" => Opcode::Store,
        "ldi" => Opcode::LoadImmInt,
        "ldf" => Opcode::LoadImmFloat,
        "icpy" => Opcode::CopyInt,
        "fcpy" => Opcode::CopyFloat,
        other => return Err(err(line, format!("unknown mnemonic `{other}`"))),
    })
}

/// Parse the self-contained text form produced by [`format_loop_full`].
pub fn parse_loop(text: &str) -> Result<Loop, ParseError> {
    let mut name = String::from("parsed");
    let mut trip = 1u32;
    let mut depth = 1u32;
    let mut arrays: Vec<ArrayInfo> = Vec::new();
    let mut vreg_classes: Vec<RegClass> = Vec::new();
    let mut live_in = Vec::new();
    let mut live_in_vals = Vec::new();
    let mut live_out = Vec::new();
    let mut ops: Vec<Operation> = Vec::new();

    for (ln, raw) in text.lines().enumerate() {
        let line = ln + 1;
        let code = raw.split(';').next().unwrap_or("").trim();
        if code.is_empty() {
            continue;
        }
        if let Some(rest) = code.strip_prefix("loop ") {
            let mut parts = rest.splitn(2, ' ');
            name = parts.next().unwrap_or("parsed").to_string();
            if let Some(meta) = parts.next() {
                for kv in meta.trim_matches(|c| c == '(' || c == ')').split(',') {
                    let kv = kv.trim();
                    if let Some(v) = kv.strip_prefix("trip ") {
                        trip = v.trim().parse().map_err(|_| err(line, "bad trip"))?;
                    } else if let Some(v) = kv.strip_prefix("depth ") {
                        depth = v.trim().parse().map_err(|_| err(line, "bad depth"))?;
                    }
                }
            }
            continue;
        }
        if let Some(rest) = code.strip_prefix("array ") {
            let toks: Vec<&str> = rest.split_whitespace().collect();
            if toks.len() < 3 {
                return Err(err(line, "array needs: array aN CLASS LEN"));
            }
            let class = match toks[1] {
                "int" => RegClass::Int,
                "float" => RegClass::Float,
                c => return Err(err(line, format!("unknown class `{c}`"))),
            };
            let len = toks[2].parse().map_err(|_| err(line, "bad array length"))?;
            arrays.push(ArrayInfo {
                name: toks[0].to_string(),
                class,
                len,
            });
            continue;
        }
        if let Some(rest) = code.strip_prefix("vreg ") {
            let toks: Vec<&str> = rest.split_whitespace().collect();
            if toks.len() != 2 {
                return Err(err(line, "vreg needs: vreg vN CLASS"));
            }
            let v = parse_vreg(toks[0], line)?;
            if v.index() != vreg_classes.len() {
                return Err(err(line, "vreg declarations must be dense and in order"));
            }
            vreg_classes.push(match toks[1] {
                "int" => RegClass::Int,
                "float" => RegClass::Float,
                c => return Err(err(line, format!("unknown class `{c}`"))),
            });
            continue;
        }
        if let Some(rest) = code.strip_prefix("live-in:") {
            for item in rest.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                let (reg, val) = item
                    .split_once('=')
                    .ok_or_else(|| err(line, "live-in items are vN=value"))?;
                let v = parse_vreg(reg.trim(), line)?;
                let class = *vreg_classes
                    .get(v.index())
                    .ok_or_else(|| err(line, "live-in register not declared"))?;
                let init = match class {
                    RegClass::Int => {
                        InitVal::Int(val.trim().parse().map_err(|_| err(line, "bad int init"))?)
                    }
                    RegClass::Float => InitVal::float(
                        val.trim()
                            .parse()
                            .map_err(|_| err(line, "bad float init"))?,
                    ),
                };
                live_in.push(v);
                live_in_vals.push(init);
            }
            continue;
        }
        if let Some(rest) = code.strip_prefix("live-out:") {
            for item in rest.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                live_out.push(parse_vreg(item, line)?);
            }
            continue;
        }
        if code.starts_with("op") {
            ops.push(parse_op(code, ops.len(), line)?);
            continue;
        }
        return Err(err(line, format!("unrecognised line `{code}`")));
    }

    let l = Loop {
        name,
        ops,
        vreg_classes,
        live_in,
        live_in_vals,
        live_out,
        arrays,
        trip_count: trip,
        nesting_depth: depth,
    };
    crate::verify::verify_loop(&l).map_err(|e| err(0, format!("verification failed: {e}")))?;
    Ok(l)
}

fn parse_op(code: &str, expected_idx: usize, line: usize) -> Result<Operation, ParseError> {
    let toks: Vec<&str> = code.split_whitespace().collect();
    let idx: usize = toks[0]
        .strip_prefix("op")
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| err(line, "bad op id"))?;
    if idx != expected_idx {
        return Err(err(
            line,
            format!("op ids must be dense; expected op{expected_idx}"),
        ));
    }
    let opcode = mnemonic_to_opcode(toks.get(1).copied().unwrap_or(""), line)?;
    let mut alu = match opcode {
        Opcode::IntMul | Opcode::FMul => AluKind::Mul,
        Opcode::IntDiv | Opcode::FDiv => AluKind::Div,
        _ => AluKind::Add,
    };
    let mut def = None;
    let mut uses = Vec::new();
    let mut imm = None;
    let mut fimm = None;
    let mut mem = None;

    match opcode {
        Opcode::Load => {
            // opK load vD aN off stride
            if toks.len() != 6 {
                return Err(err(line, "load needs: load vD aN OFF STRIDE"));
            }
            def = Some(parse_vreg(toks[2], line)?);
            mem = Some(MemRef {
                array: parse_array_id(toks[3], line)?,
                offset: toks[4].parse().map_err(|_| err(line, "bad offset"))?,
                stride: toks[5].parse().map_err(|_| err(line, "bad stride"))?,
            });
        }
        Opcode::Store => {
            // opK store aN off stride vS
            if toks.len() != 6 {
                return Err(err(line, "store needs: store aN OFF STRIDE vS"));
            }
            mem = Some(MemRef {
                array: parse_array_id(toks[2], line)?,
                offset: toks[3].parse().map_err(|_| err(line, "bad offset"))?,
                stride: toks[4].parse().map_err(|_| err(line, "bad stride"))?,
            });
            uses.push(parse_vreg(toks[5], line)?);
        }
        _ => {
            for tok in &toks[2..] {
                if let Some(k) = tok.strip_prefix('!') {
                    alu = match k {
                        "+" => AluKind::Add,
                        "-" => AluKind::Sub,
                        "*" => AluKind::Mul,
                        "/" => AluKind::Div,
                        _ => return Err(err(line, "bad ALU kind")),
                    };
                } else if let Some(v) = tok.strip_prefix('#') {
                    match opcode {
                        Opcode::LoadImmFloat => {
                            fimm = Some(v.parse::<f64>().map_err(|_| err(line, "bad float imm"))?)
                        }
                        _ => imm = Some(v.parse::<i64>().map_err(|_| err(line, "bad imm"))?),
                    }
                } else if def.is_none() {
                    // First register token is the def (every non-memory
                    // opcode defines a register).
                    def = Some(parse_vreg(tok, line)?);
                } else {
                    uses.push(parse_vreg(tok, line)?);
                }
            }
        }
    }

    Ok(Operation {
        id: OpId(expected_idx as u32),
        opcode,
        alu,
        def,
        uses,
        imm,
        fimm_bits: fimm.map(f64::to_bits),
        mem,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LoopBuilder;

    fn daxpy() -> Loop {
        let mut b = LoopBuilder::new("daxpy");
        let x = b.array("x", RegClass::Float, 64);
        let y = b.array("y", RegClass::Float, 64);
        let a = b.live_in_float_val("a", 1.5);
        let xv = b.load(x, 0, 1);
        let yv = b.load(y, 0, 1);
        let p = b.fmul(a, xv);
        let s = b.fadd(yv, p);
        b.store(y, 0, 1, s);
        b.live_out(s);
        b.finish(64)
    }

    #[test]
    fn round_trips_daxpy() {
        let l = daxpy();
        let text = format_loop_full(&l);
        let back = parse_loop(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(back.ops, l.ops);
        assert_eq!(back.vreg_classes, l.vreg_classes);
        assert_eq!(back.live_in, l.live_in);
        assert_eq!(back.live_in_vals, l.live_in_vals);
        assert_eq!(back.live_out, l.live_out);
        assert_eq!(back.trip_count, l.trip_count);
        assert_eq!(back.arrays.len(), l.arrays.len());
    }

    #[test]
    fn round_trips_immediates_and_copies() {
        let mut b = LoopBuilder::new("imm");
        let i = b.iconst_new(-42);
        let f = b.fconst_new(2.5);
        let c = b.copy(f);
        let j = b.copy(i);
        let _ = b.fadd(c, f);
        let _ = b.iadd(j, i);
        let l = b.finish(4);
        let back = parse_loop(&format_loop_full(&l)).unwrap();
        assert_eq!(back.ops, l.ops);
    }

    #[test]
    fn round_trips_alu_kinds() {
        let mut b = LoopBuilder::new("alu");
        let p = b.fconst_new(1.0);
        let q = b.fconst_new(2.0);
        b.fsub(p, q);
        b.fadd(p, q);
        let l = b.finish(1);
        let back = parse_loop(&format_loop_full(&l)).unwrap();
        assert_eq!(back.ops[2].alu, AluKind::Sub);
        assert_eq!(back.ops[3].alu, AluKind::Add);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_loop("loop x\n  frobnicate v0").is_err());
        assert!(parse_loop("loop x\n  op0 load v0").is_err()); // arity
        assert!(parse_loop("loop x\n  vreg v5 float").is_err()); // not dense
    }

    #[test]
    fn rejects_structurally_invalid() {
        // Uses an undeclared register → verifier error surfaces as parse error.
        let text =
            "loop bad (trip 1, depth 1)\n  vreg v0 float\n  vreg v1 float\n  op0 fmul v0 v1 v1\n";
        assert!(parse_loop(text).is_err());
    }

    #[test]
    fn hand_written_loop_parses() {
        let text = "\
loop handmade (trip 8, depth 1)
  array x float 32
  vreg v0 float
  vreg v1 float
  live-in: v0=3.0
  op0 load v1 a0 0 1
  op1 fmul v1 v0 v1   ; def v1 from v0,v1
  op2 store a0 0 1 v1
  live-out: v1
";
        let l = parse_loop(text).unwrap();
        assert_eq!(l.n_ops(), 3);
        assert_eq!(l.trip_count, 8);
        assert_eq!(l.live_in_vals[0], InitVal::float(3.0));
    }
}
