//! Operations: opcodes, def/use sets, and memory-reference metadata.

use crate::looprep::ArrayId;
use crate::reg::{RegClass, VReg};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an operation within a [`crate::Loop`] body (its position in
/// program order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct OpId(pub u32);

impl OpId {
    /// Dense index of this operation in the loop body.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// The opcode set.
///
/// This is the minimal opcode vocabulary needed to express the paper's loop
/// corpus (Fortran innermost loops: array loads/stores, int/fp arithmetic,
/// address arithmetic) plus the two explicit inter-bank copy operations the
/// partitioner inserts. Latencies live in `vliw-machine`, not here — the IR
/// is machine-independent, exactly as the paper's retargetability argument
/// requires (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Opcode {
    /// Integer add/subtract/logical — "other integer instructions" (1 cycle).
    IntAlu,
    /// Integer multiply (5 cycles).
    IntMul,
    /// Integer divide (12 cycles).
    IntDiv,
    /// Floating-point add/subtract — "other floating point" (2 cycles).
    FAlu,
    /// Floating-point multiply (2 cycles).
    FMul,
    /// Floating-point divide (2 cycles, per the paper's table).
    FDiv,
    /// Load from memory (2 cycles). Carries a [`MemRef`].
    Load,
    /// Store to memory (4 cycles). Carries a [`MemRef`].
    Store,
    /// Materialise an integer constant (1 cycle).
    LoadImmInt,
    /// Materialise a floating-point constant (1 cycle).
    LoadImmFloat,
    /// Inter-bank copy of an integer value (2 cycles).
    CopyInt,
    /// Inter-bank copy of a floating-point value (3 cycles).
    CopyFloat,
}

impl Opcode {
    /// Is this one of the two inter-bank copy opcodes?
    #[inline]
    pub fn is_copy(self) -> bool {
        matches!(self, Opcode::CopyInt | Opcode::CopyFloat)
    }

    /// Does this opcode access memory?
    #[inline]
    pub fn is_mem(self) -> bool {
        matches!(self, Opcode::Load | Opcode::Store)
    }

    /// The register class of the value this opcode produces (or stores).
    pub fn result_class(self) -> RegClass {
        match self {
            Opcode::IntAlu
            | Opcode::IntMul
            | Opcode::IntDiv
            | Opcode::LoadImmInt
            | Opcode::CopyInt => RegClass::Int,
            Opcode::FAlu
            | Opcode::FMul
            | Opcode::FDiv
            | Opcode::LoadImmFloat
            | Opcode::CopyFloat => RegClass::Float,
            // Loads and stores are typed by the array they touch; the builder
            // fixes the actual class. `Float` is the common case in the
            // Fortran corpus.
            Opcode::Load | Opcode::Store => RegClass::Float,
        }
    }

    /// The copy opcode appropriate for copying a value of class `class`.
    pub fn copy_for(class: RegClass) -> Opcode {
        match class {
            RegClass::Int => Opcode::CopyInt,
            RegClass::Float => Opcode::CopyFloat,
        }
    }

    /// Mnemonic used by the printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::IntAlu => "ialu",
            Opcode::IntMul => "imul",
            Opcode::IntDiv => "idiv",
            Opcode::FAlu => "falu",
            Opcode::FMul => "fmul",
            Opcode::FDiv => "fdiv",
            Opcode::Load => "load",
            Opcode::Store => "store",
            Opcode::LoadImmInt => "ldi",
            Opcode::LoadImmFloat => "ldf",
            Opcode::CopyInt => "icpy",
            Opcode::CopyFloat => "fcpy",
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Affine memory-reference metadata for a load or store.
///
/// The address of the access in iteration `i` is
/// `base(array) + offset + i * stride` (in elements). The loop generator
/// guarantees that this metadata agrees with the explicit address arithmetic
/// in the loop body, so dependence analysis (which uses this metadata) and
/// simulation (which uses the register-held address) agree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemRef {
    /// The array being accessed.
    pub array: ArrayId,
    /// Constant element offset from the array base at iteration 0.
    pub offset: i64,
    /// Elements advanced per loop iteration.
    pub stride: i64,
}

/// Arithmetic interpretation of an [`Opcode::IntAlu`] / [`Opcode::FAlu`] op,
/// used by the simulator. Scheduling and partitioning never inspect this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AluKind {
    /// `dst = a + b` (or `a + imm`).
    Add,
    /// `dst = a - b`.
    Sub,
    /// Generic multiply (for `IntMul`/`FMul`) — kept for symmetry.
    Mul,
    /// Generic divide.
    Div,
}

/// A three-address operation.
///
/// At most one def; zero, one or two uses. Copies inserted by the partitioner
/// are ordinary operations with [`Opcode::is_copy`] true, so the clustered
/// rescheduling pass (§4, step 4) treats them uniformly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Operation {
    /// Identifier (== position in the loop body).
    pub id: OpId,
    /// The opcode.
    pub opcode: Opcode,
    /// Arithmetic interpretation for the simulator.
    pub alu: AluKind,
    /// Defined register, if any (stores define nothing).
    pub def: Option<VReg>,
    /// Used registers, in operand order. For `Store`, `uses[0]` is the stored
    /// value and `uses[1]` the address; for `Load`, `uses[0]` is the address.
    pub uses: Vec<VReg>,
    /// Immediate operand (constant for `LoadImm*`, addend for address
    /// arithmetic with one register operand).
    pub imm: Option<i64>,
    /// Floating-point immediate for `LoadImmFloat`, stored as bits for `Eq`.
    pub fimm_bits: Option<u64>,
    /// Memory metadata for loads/stores.
    pub mem: Option<MemRef>,
}

impl Operation {
    /// Floating-point immediate, decoded.
    pub fn fimm(&self) -> Option<f64> {
        self.fimm_bits.map(f64::from_bits)
    }

    /// Iterate over every register the operation mentions (def first).
    pub fn regs(&self) -> impl Iterator<Item = VReg> + '_ {
        self.def.into_iter().chain(self.uses.iter().copied())
    }

    /// True if `v` is used by this operation.
    pub fn uses_reg(&self, v: VReg) -> bool {
        self.uses.contains(&v)
    }

    /// True if `v` is defined by this operation.
    pub fn defines(&self, v: VReg) -> bool {
        self.def == Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_op() -> Operation {
        Operation {
            id: OpId(0),
            opcode: Opcode::FMul,
            alu: AluKind::Mul,
            def: Some(VReg(2)),
            uses: vec![VReg(0), VReg(1)],
            imm: None,
            fimm_bits: None,
            mem: None,
        }
    }

    #[test]
    fn copy_opcodes_classified() {
        assert!(Opcode::CopyInt.is_copy());
        assert!(Opcode::CopyFloat.is_copy());
        assert!(!Opcode::FMul.is_copy());
        assert_eq!(Opcode::copy_for(RegClass::Int), Opcode::CopyInt);
        assert_eq!(Opcode::copy_for(RegClass::Float), Opcode::CopyFloat);
    }

    #[test]
    fn mem_opcodes_classified() {
        assert!(Opcode::Load.is_mem());
        assert!(Opcode::Store.is_mem());
        assert!(!Opcode::IntAlu.is_mem());
    }

    #[test]
    fn result_classes() {
        assert_eq!(Opcode::IntMul.result_class(), RegClass::Int);
        assert_eq!(Opcode::FDiv.result_class(), RegClass::Float);
        assert_eq!(Opcode::CopyInt.result_class(), RegClass::Int);
    }

    #[test]
    fn regs_iterates_def_then_uses() {
        let op = sample_op();
        let regs: Vec<_> = op.regs().collect();
        assert_eq!(regs, vec![VReg(2), VReg(0), VReg(1)]);
        assert!(op.defines(VReg(2)));
        assert!(op.uses_reg(VReg(0)));
        assert!(!op.uses_reg(VReg(2)));
    }

    #[test]
    fn fimm_roundtrip() {
        let mut op = sample_op();
        op.fimm_bits = Some(2.5f64.to_bits());
        assert_eq!(op.fimm(), Some(2.5));
    }

    #[test]
    fn every_opcode_has_distinct_mnemonic() {
        let all = [
            Opcode::IntAlu,
            Opcode::IntMul,
            Opcode::IntDiv,
            Opcode::FAlu,
            Opcode::FMul,
            Opcode::FDiv,
            Opcode::Load,
            Opcode::Store,
            Opcode::LoadImmInt,
            Opcode::LoadImmFloat,
            Opcode::CopyInt,
            Opcode::CopyFloat,
        ];
        let mut names: Vec<_> = all.iter().map(|o| o.mnemonic()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }
}
