//! # vliw-ir — three-address intermediate representation for clustered-VLIW code generation
//!
//! This crate defines the loop-body IR the rest of the workspace consumes:
//!
//! * [`VReg`] / [`RegClass`] — symbolic (virtual) registers on an infinite
//!   register file, split into integer and floating-point classes,
//! * [`Opcode`] / [`Operation`] — three-address operations with explicit
//!   def/use sets and optional memory-reference metadata for dependence
//!   analysis,
//! * [`Loop`] — a single-block innermost loop body (the unit of software
//!   pipelining in the paper), including live-in/live-out sets, per-array
//!   simulation metadata, and nesting depth,
//! * [`LoopBuilder`] — an ergonomic builder that keeps the def/use,
//!   register-class and memory metadata consistent by construction.
//!
//! The paper (Hiser, Carr, Sweany, Beaty; IPPS 2000) runs its experiments on
//! single-block innermost loops extracted from Spec95 Fortran, represented as
//! three-address intermediate code over symbolic registers, "assuming a single
//! infinite register bank" (§4, step 1). This IR is that representation.
//!
//! Program order is semantically meaningful: a use of a virtual register that
//! textually precedes every def of that register in the body reads the value
//! produced by the *previous* iteration (or the live-in value on the first
//! iteration). This is exactly how non-SSA three-address code expresses
//! loop-carried recurrences, and the dependence builder in `vliw-ddg` derives
//! cross-iteration distances from it.

#![warn(missing_docs)]

pub mod builder;
pub mod func;
pub mod looprep;
pub mod op;
pub mod parser;
pub mod printer;
pub mod reg;
pub mod verify;

pub use builder::LoopBuilder;
pub use func::{Function, FunctionBuilder};
pub use looprep::{ArrayId, ArrayInfo, InitVal, Loop};
pub use op::{AluKind, MemRef, OpId, Opcode, Operation};
pub use parser::{format_loop_full, parse_loop, ParseError};
pub use reg::{RegClass, VReg};
pub use verify::{verify_loop, VerifyError};
