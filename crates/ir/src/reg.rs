//! Virtual registers and register classes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The register class of a value.
///
/// The paper's machine models distinguish integer and floating-point values
/// only through latencies (integer copies take 2 cycles, floating-point
/// copies 3; §6.1). Register banks in this reproduction hold both classes,
/// with independently configurable capacities per class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RegClass {
    /// Integer (and address) values.
    Int,
    /// Floating-point values.
    Float,
}

impl RegClass {
    /// All register classes, in a stable order.
    pub const ALL: [RegClass; 2] = [RegClass::Int, RegClass::Float];

    /// A stable dense index for per-class tables.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            RegClass::Int => 0,
            RegClass::Float => 1,
        }
    }

    /// Single-letter prefix used by the printer (`r` for int, `f` for float).
    #[inline]
    pub fn prefix(self) -> char {
        match self {
            RegClass::Int => 'r',
            RegClass::Float => 'f',
        }
    }
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegClass::Int => write!(f, "int"),
            RegClass::Float => write!(f, "float"),
        }
    }
}

/// A virtual (symbolic) register.
///
/// Virtual registers are dense indices into the owning [`crate::Loop`]'s
/// register table; the class of a register is recorded there. The RCG
/// partitioner in `vliw-core` operates on these indices directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VReg(pub u32);

impl VReg {
    /// The dense index of this register.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_indices_are_dense_and_distinct() {
        let mut seen = [false; 2];
        for c in RegClass::ALL {
            assert!(!seen[c.index()], "duplicate index for {c}");
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn vreg_display_and_index() {
        let v = VReg(7);
        assert_eq!(v.to_string(), "v7");
        assert_eq!(v.index(), 7);
    }

    #[test]
    fn class_prefixes_differ() {
        assert_ne!(RegClass::Int.prefix(), RegClass::Float.prefix());
    }
}
