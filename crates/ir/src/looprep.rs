//! The loop representation: a single-block innermost loop body.

use crate::op::{OpId, Operation};
use crate::reg::{RegClass, VReg};
use serde::{Deserialize, Serialize};

/// Identifier of an array (a named region of memory the loop accesses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ArrayId(pub u32);

impl ArrayId {
    /// Dense index of this array in the loop's array table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Simulation metadata for one array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrayInfo {
    /// Human-readable name (`x`, `y`, …).
    pub name: String,
    /// Element class (loads/stores of this array move values of this class).
    pub class: RegClass,
    /// Number of elements the simulator materialises. Must cover every
    /// address the loop touches over its trip count.
    pub len: usize,
}

/// Initial value of a live-in register, used by the simulator and the scalar
/// reference oracle. Floats are stored as bits so `Loop` can derive `Eq`-like
/// semantics through `PartialEq` deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum InitVal {
    /// Integer initial value.
    Int(i64),
    /// Floating-point initial value (IEEE-754 bits).
    Float(u64),
}

impl InitVal {
    /// Construct a float initial value.
    pub fn float(v: f64) -> Self {
        InitVal::Float(v.to_bits())
    }

    /// Decode as f64 (ints are converted).
    pub fn as_f64(self) -> f64 {
        match self {
            InitVal::Int(i) => i as f64,
            InitVal::Float(b) => f64::from_bits(b),
        }
    }

    /// Decode as i64 (floats are truncated).
    pub fn as_i64(self) -> i64 {
        match self {
            InitVal::Int(i) => i,
            InitVal::Float(b) => f64::from_bits(b) as i64,
        }
    }
}

/// A single-block innermost loop, the unit of software pipelining.
///
/// Semantics: the body executes `trip_count` times in program order. A use of
/// a virtual register before any def of it in the body reads the previous
/// iteration's value (live-in value on iteration 0) — this encodes
/// loop-carried recurrences without SSA phi nodes, matching the three-address
/// code the paper's Rocket compiler hands to its backend.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Loop {
    /// Name for reports (e.g. `daxpy_u4_017`).
    pub name: String,
    /// Body operations in program order. `ops[i].id == OpId(i)`.
    pub ops: Vec<Operation>,
    /// Register class of every virtual register; `vreg_classes[v.index()]`.
    pub vreg_classes: Vec<RegClass>,
    /// Registers holding values on loop entry (invariants and recurrence
    /// seeds).
    pub live_in: Vec<VReg>,
    /// Initial values of the live-in registers, parallel to `live_in`.
    pub live_in_vals: Vec<InitVal>,
    /// Registers whose final values are observed after the loop.
    pub live_out: Vec<VReg>,
    /// Arrays the loop touches.
    pub arrays: Vec<ArrayInfo>,
    /// Iterations to execute when simulated.
    pub trip_count: u32,
    /// Nesting depth of the enclosing block (1 = innermost, as in the whole
    /// experimental corpus; the RCG weighting uses this).
    pub nesting_depth: u32,
}

impl Loop {
    /// Number of operations in the body.
    #[inline]
    pub fn n_ops(&self) -> usize {
        self.ops.len()
    }

    /// Number of virtual registers.
    #[inline]
    pub fn n_vregs(&self) -> usize {
        self.vreg_classes.len()
    }

    /// Class of a virtual register.
    #[inline]
    pub fn class_of(&self, v: VReg) -> RegClass {
        self.vreg_classes[v.index()]
    }

    /// The operation with the given id.
    #[inline]
    pub fn op(&self, id: OpId) -> &Operation {
        &self.ops[id.index()]
    }

    /// Is `v` live into the loop?
    pub fn is_live_in(&self, v: VReg) -> bool {
        self.live_in.contains(&v)
    }

    /// Is `v` a loop invariant: live-in and never defined in the body?
    pub fn is_invariant(&self, v: VReg) -> bool {
        self.is_live_in(v) && !self.ops.iter().any(|o| o.defines(v))
    }

    /// Program-order positions of every def of `v`.
    pub fn defs_of(&self, v: VReg) -> Vec<OpId> {
        self.ops
            .iter()
            .filter(|o| o.defines(v))
            .map(|o| o.id)
            .collect()
    }

    /// Program-order positions of every use of `v`.
    pub fn uses_of(&self, v: VReg) -> Vec<OpId> {
        self.ops
            .iter()
            .filter(|o| o.uses_reg(v))
            .map(|o| o.id)
            .collect()
    }

    /// Registers that carry a value across iterations: defined in the body
    /// and either used before their first def (recurrence) or live-out.
    pub fn carried_regs(&self) -> Vec<VReg> {
        let mut out = Vec::new();
        for v in (0..self.n_vregs() as u32).map(VReg) {
            let defs = self.defs_of(v);
            if defs.is_empty() {
                continue;
            }
            let first_def = defs[0];
            let used_before_def = self
                .ops
                .iter()
                .take(first_def.index())
                .any(|o| o.uses_reg(v));
            if used_before_def || self.live_out.contains(&v) {
                out.push(v);
            }
        }
        out
    }

    /// Count of operations per opcode predicate (helper for stats).
    pub fn count_ops(&self, pred: impl Fn(&Operation) -> bool) -> usize {
        self.ops.iter().filter(|o| pred(o)).count()
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::LoopBuilder;
    use crate::op::Opcode;

    #[test]
    fn invariants_and_carried_regs() {
        // s = s + a * x  (a invariant, s recurrence)
        let mut b = LoopBuilder::new("rec");
        let a = b.live_in_float("a");
        let s = b.live_in_float("s");
        let x = b.new_float();
        // x is defined (constant) then used, s is used-then-defined.
        b.fconst(x, 1.0);
        let t = b.fmul(a, x);
        let s2 = b.falu_into(s, crate::op::AluKind::Add, s, t);
        assert_eq!(s2, s);
        b.live_out(s);
        let l = b.finish(8);

        assert!(l.is_invariant(a));
        assert!(!l.is_invariant(s));
        assert!(l.is_live_in(s));
        let carried = l.carried_regs();
        assert!(carried.contains(&s));
        assert!(!carried.contains(&a));
        assert_eq!(l.count_ops(|o| o.opcode == Opcode::FMul), 1);
    }
}
