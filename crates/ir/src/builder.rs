//! Builder for [`Loop`] bodies that keeps def/use, register-class and memory
//! metadata consistent by construction.

use crate::looprep::{ArrayId, ArrayInfo, InitVal, Loop};
use crate::op::{AluKind, MemRef, OpId, Opcode, Operation};
use crate::reg::{RegClass, VReg};

/// Incremental builder for a [`Loop`].
///
/// ```
/// use vliw_ir::{LoopBuilder, Opcode};
///
/// // s = s + a[i] * b[i]
/// let mut b = LoopBuilder::new("dot");
/// let x = b.array("x", vliw_ir::RegClass::Float, 64);
/// let y = b.array("y", vliw_ir::RegClass::Float, 64);
/// let s = b.live_in_float_val("s", 0.0);
/// let xv = b.load(x, 0, 1);
/// let yv = b.load(y, 0, 1);
/// let p = b.fmul(xv, yv);
/// b.fadd_into(s, s, p);
/// b.live_out(s);
/// let l = b.finish(64);
/// assert_eq!(l.n_ops(), 4);
/// assert_eq!(l.count_ops(|o| o.opcode == Opcode::Load), 2);
/// vliw_ir::verify_loop(&l).unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct LoopBuilder {
    name: String,
    ops: Vec<Operation>,
    vreg_classes: Vec<RegClass>,
    live_in: Vec<VReg>,
    live_in_vals: Vec<InitVal>,
    live_out: Vec<VReg>,
    arrays: Vec<ArrayInfo>,
    nesting_depth: u32,
}

impl LoopBuilder {
    /// Start building a loop called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        LoopBuilder {
            name: name.into(),
            ops: Vec::new(),
            vreg_classes: Vec::new(),
            live_in: Vec::new(),
            live_in_vals: Vec::new(),
            live_out: Vec::new(),
            arrays: Vec::new(),
            nesting_depth: 1,
        }
    }

    /// Set the loop nesting depth recorded on the result (default 1).
    pub fn nesting(&mut self, depth: u32) -> &mut Self {
        self.nesting_depth = depth;
        self
    }

    /// Rename the loop under construction (used by [`crate::FunctionBuilder`]).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Operations emitted so far.
    pub fn ops(&self) -> &[Operation] {
        &self.ops
    }

    /// Drop the op stream, keeping all register/array/live-in tables (used
    /// by [`crate::FunctionBuilder`] to thread shared state between blocks).
    pub fn clear_ops(&mut self) {
        self.ops.clear();
        self.live_out.clear();
    }

    /// Register classes declared so far.
    pub fn classes(&self) -> &[RegClass] {
        &self.vreg_classes
    }

    /// Arrays declared so far.
    pub fn arrays_ref(&self) -> &[ArrayInfo] {
        &self.arrays
    }

    /// Class of an already-declared register.
    pub fn class_of(&self, v: VReg) -> RegClass {
        self.vreg_classes[v.index()]
    }

    /// Is `v` already declared live-in?
    pub fn is_live_in(&self, v: VReg) -> bool {
        self.live_in.contains(&v)
    }

    /// Declare an existing register live-in with the given initial value.
    pub fn add_live_in(&mut self, v: VReg, init: InitVal) {
        debug_assert!(!self.is_live_in(v));
        self.live_in.push(v);
        self.live_in_vals.push(init);
    }

    /// Declare an array of `len` elements of class `class`.
    pub fn array(&mut self, name: impl Into<String>, class: RegClass, len: usize) -> ArrayId {
        let id = ArrayId(self.arrays.len() as u32);
        self.arrays.push(ArrayInfo {
            name: name.into(),
            class,
            len,
        });
        id
    }

    /// Allocate a fresh virtual register of the given class.
    pub fn fresh(&mut self, class: RegClass) -> VReg {
        let v = VReg(self.vreg_classes.len() as u32);
        self.vreg_classes.push(class);
        v
    }

    /// Allocate a fresh integer register (no def yet).
    pub fn new_int(&mut self) -> VReg {
        self.fresh(RegClass::Int)
    }

    /// Allocate a fresh floating-point register (no def yet).
    pub fn new_float(&mut self) -> VReg {
        self.fresh(RegClass::Float)
    }

    fn live_in_reg(&mut self, class: RegClass, val: InitVal) -> VReg {
        let v = self.fresh(class);
        self.live_in.push(v);
        self.live_in_vals.push(val);
        v
    }

    /// Declare an integer live-in with a default initial value of 1.
    pub fn live_in_int(&mut self, _name: &str) -> VReg {
        self.live_in_reg(RegClass::Int, InitVal::Int(1))
    }

    /// Declare an integer live-in with the given initial value.
    pub fn live_in_int_val(&mut self, _name: &str, val: i64) -> VReg {
        self.live_in_reg(RegClass::Int, InitVal::Int(val))
    }

    /// Declare a floating-point live-in with a default initial value of 1.0.
    pub fn live_in_float(&mut self, _name: &str) -> VReg {
        self.live_in_reg(RegClass::Float, InitVal::float(1.0))
    }

    /// Declare a floating-point live-in with the given initial value.
    pub fn live_in_float_val(&mut self, _name: &str, val: f64) -> VReg {
        self.live_in_reg(RegClass::Float, InitVal::float(val))
    }

    /// Mark `v` live-out of the loop.
    pub fn live_out(&mut self, v: VReg) -> &mut Self {
        if !self.live_out.contains(&v) {
            self.live_out.push(v);
        }
        self
    }

    fn push(&mut self, mut op: Operation) -> OpId {
        let id = OpId(self.ops.len() as u32);
        op.id = id;
        self.ops.push(op);
        id
    }

    #[allow(clippy::too_many_arguments)]
    fn raw(
        &mut self,
        opcode: Opcode,
        alu: AluKind,
        def: Option<VReg>,
        uses: Vec<VReg>,
        imm: Option<i64>,
        fimm: Option<f64>,
        mem: Option<MemRef>,
    ) -> OpId {
        self.push(Operation {
            id: OpId(0),
            opcode,
            alu,
            def,
            uses,
            imm,
            fimm_bits: fimm.map(f64::to_bits),
            mem,
        })
    }

    // ---- arithmetic -----------------------------------------------------

    fn binop(&mut self, opcode: Opcode, alu: AluKind, dst: VReg, a: VReg, b: VReg) -> VReg {
        assert_eq!(
            self.vreg_classes[dst.index()],
            opcode.result_class(),
            "destination class must match the opcode"
        );
        self.raw(opcode, alu, Some(dst), vec![a, b], None, None, None);
        dst
    }

    /// `dst = a + b` (float), fresh destination.
    pub fn fadd(&mut self, a: VReg, b: VReg) -> VReg {
        let d = self.new_float();
        self.binop(Opcode::FAlu, AluKind::Add, d, a, b)
    }

    /// `dst = a - b` (float), fresh destination.
    pub fn fsub(&mut self, a: VReg, b: VReg) -> VReg {
        let d = self.new_float();
        self.binop(Opcode::FAlu, AluKind::Sub, d, a, b)
    }

    /// `dst = a * b` (float), fresh destination.
    pub fn fmul(&mut self, a: VReg, b: VReg) -> VReg {
        let d = self.new_float();
        self.binop(Opcode::FMul, AluKind::Mul, d, a, b)
    }

    /// `dst = a / b` (float), fresh destination.
    pub fn fdiv(&mut self, a: VReg, b: VReg) -> VReg {
        let d = self.new_float();
        self.binop(Opcode::FDiv, AluKind::Div, d, a, b)
    }

    /// `dst = a + b` (int), fresh destination.
    pub fn iadd(&mut self, a: VReg, b: VReg) -> VReg {
        let d = self.new_int();
        self.binop(Opcode::IntAlu, AluKind::Add, d, a, b)
    }

    /// `dst = a - b` (int), fresh destination.
    pub fn isub(&mut self, a: VReg, b: VReg) -> VReg {
        let d = self.new_int();
        self.binop(Opcode::IntAlu, AluKind::Sub, d, a, b)
    }

    /// `dst = a * b` (int), fresh destination.
    pub fn imul(&mut self, a: VReg, b: VReg) -> VReg {
        let d = self.new_int();
        self.binop(Opcode::IntMul, AluKind::Mul, d, a, b)
    }

    /// `dst = a / b` (int), fresh destination.
    pub fn idiv(&mut self, a: VReg, b: VReg) -> VReg {
        let d = self.new_int();
        self.binop(Opcode::IntDiv, AluKind::Div, d, a, b)
    }

    /// Float ALU op into an existing destination (for recurrences).
    pub fn falu_into(&mut self, dst: VReg, kind: AluKind, a: VReg, b: VReg) -> VReg {
        self.binop(Opcode::FAlu, kind, dst, a, b)
    }

    /// `dst = a + b` (float) into an existing destination.
    pub fn fadd_into(&mut self, dst: VReg, a: VReg, b: VReg) -> VReg {
        self.falu_into(dst, AluKind::Add, a, b)
    }

    /// `dst = a * b` (float) into an existing destination.
    pub fn fmul_into(&mut self, dst: VReg, a: VReg, b: VReg) -> VReg {
        self.binop(Opcode::FMul, AluKind::Mul, dst, a, b)
    }

    /// Integer ALU op into an existing destination (for recurrences).
    pub fn ialu_into(&mut self, dst: VReg, kind: AluKind, a: VReg, b: VReg) -> VReg {
        self.binop(Opcode::IntAlu, kind, dst, a, b)
    }

    /// `dst = a + b` (int) into an existing destination.
    pub fn iadd_into(&mut self, dst: VReg, a: VReg, b: VReg) -> VReg {
        self.ialu_into(dst, AluKind::Add, a, b)
    }

    // ---- constants ------------------------------------------------------

    /// Materialise an integer constant into `dst`.
    pub fn iconst(&mut self, dst: VReg, val: i64) -> VReg {
        self.raw(
            Opcode::LoadImmInt,
            AluKind::Add,
            Some(dst),
            vec![],
            Some(val),
            None,
            None,
        );
        dst
    }

    /// Materialise an integer constant into a fresh register.
    pub fn iconst_new(&mut self, val: i64) -> VReg {
        let d = self.new_int();
        self.iconst(d, val)
    }

    /// Materialise a float constant into `dst`.
    pub fn fconst(&mut self, dst: VReg, val: f64) -> VReg {
        self.raw(
            Opcode::LoadImmFloat,
            AluKind::Add,
            Some(dst),
            vec![],
            None,
            Some(val),
            None,
        );
        dst
    }

    /// Materialise a float constant into a fresh register.
    pub fn fconst_new(&mut self, val: f64) -> VReg {
        let d = self.new_float();
        self.fconst(d, val)
    }

    // ---- memory ---------------------------------------------------------

    /// Load `array[offset + i*stride]` into a fresh register of the array's
    /// class. Addressing is implicit (auto-increment addressing modes, as on
    /// the TI DSPs the paper cites), so loads have no address operand.
    pub fn load(&mut self, array: ArrayId, offset: i64, stride: i64) -> VReg {
        let class = self.arrays[array.index()].class;
        let d = self.fresh(class);
        self.raw(
            Opcode::Load,
            AluKind::Add,
            Some(d),
            vec![],
            None,
            None,
            Some(MemRef {
                array,
                offset,
                stride,
            }),
        );
        d
    }

    /// Store `val` to `array[offset + i*stride]`.
    pub fn store(&mut self, array: ArrayId, offset: i64, stride: i64, val: VReg) -> OpId {
        assert_eq!(
            self.arrays[array.index()].class,
            self.vreg_classes[val.index()],
            "store value class must match array class"
        );
        self.raw(
            Opcode::Store,
            AluKind::Add,
            None,
            vec![val],
            None,
            None,
            Some(MemRef {
                array,
                offset,
                stride,
            }),
        )
    }

    // ---- copies (used by the partitioner, exposed for tests) -------------

    /// Explicit inter-bank copy `dst = src`; `dst` must be fresh and of the
    /// same class as `src`.
    pub fn copy(&mut self, src: VReg) -> VReg {
        let class = self.vreg_classes[src.index()];
        let d = self.fresh(class);
        self.raw(
            Opcode::copy_for(class),
            AluKind::Add,
            Some(d),
            vec![src],
            None,
            None,
            None,
        );
        d
    }

    /// Finalise the loop with the given simulation trip count.
    pub fn finish(self, trip_count: u32) -> Loop {
        Loop {
            name: self.name,
            ops: self.ops,
            vreg_classes: self.vreg_classes,
            live_in: self.live_in,
            live_in_vals: self.live_in_vals,
            live_out: self.live_out,
            arrays: self.arrays,
            trip_count,
            nesting_depth: self.nesting_depth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_loop;

    #[test]
    fn daxpy_builds_and_verifies() {
        // y[i] = y[i] + a * x[i]
        let mut b = LoopBuilder::new("daxpy");
        let x = b.array("x", RegClass::Float, 100);
        let y = b.array("y", RegClass::Float, 100);
        let a = b.live_in_float_val("a", 3.0);
        let xv = b.load(x, 0, 1);
        let yv = b.load(y, 0, 1);
        let p = b.fmul(a, xv);
        let s = b.fadd(yv, p);
        b.store(y, 0, 1, s);
        let l = b.finish(100);
        verify_loop(&l).unwrap();
        assert_eq!(l.n_ops(), 5);
        assert_eq!(l.n_vregs(), 5);
        assert!(l.carried_regs().is_empty());
    }

    #[test]
    fn recurrence_is_carried() {
        let mut b = LoopBuilder::new("rec1");
        let x = b.array("x", RegClass::Float, 32);
        let a = b.live_in_float_val("a", 0.5);
        let s = b.live_in_float_val("s", 0.0);
        let xv = b.load(x, 0, 1);
        let t = b.fmul(a, s); // uses previous iteration's s
        b.fadd_into(s, t, xv);
        b.live_out(s);
        let l = b.finish(32);
        verify_loop(&l).unwrap();
        assert_eq!(l.carried_regs(), vec![s]);
    }

    #[test]
    #[should_panic]
    fn store_class_mismatch_panics() {
        let mut b = LoopBuilder::new("bad");
        let x = b.array("x", RegClass::Float, 8);
        let i = b.iconst_new(1);
        b.store(x, 0, 1, i);
    }

    #[test]
    fn copy_preserves_class() {
        let mut b = LoopBuilder::new("cp");
        let v = b.fconst_new(2.0);
        let c = b.copy(v);
        let w = b.iconst_new(3);
        let d = b.copy(w);
        let l = b.finish(1);
        assert_eq!(l.class_of(c), RegClass::Float);
        assert_eq!(l.class_of(d), RegClass::Int);
        assert_eq!(l.ops[1].opcode, Opcode::CopyFloat);
        assert_eq!(l.ops[3].opcode, Opcode::CopyInt);
    }
}
