//! Property tests for the simulators: pipelined execution of every corpus
//! family, at every unroll factor, on several machines, is bit-exact
//! against the scalar reference — through the FULL partitioning pipeline.

use proptest::prelude::*;
use vliw_core::{assign_banks_caps, build_rcg, insert_copies, PartitionConfig};
use vliw_ddg::{build_ddg, compute_slack};
use vliw_loopgen::Family;
use vliw_machine::MachineDesc;
use vliw_regalloc::allocate;
use vliw_sched::{schedule_loop, ImsConfig, SchedProblem};
use vliw_sim::{check_equivalence, check_physical_equivalence, run_reference};

fn family() -> impl Strategy<Value = Family> {
    proptest::sample::select(Family::ALL.to_vec())
}

fn machine() -> impl Strategy<Value = MachineDesc> {
    prop_oneof![
        Just(MachineDesc::embedded(2, 8)),
        Just(MachineDesc::embedded(4, 4)),
        Just(MachineDesc::embedded(8, 2)),
        Just(MachineDesc::copy_unit(2, 8)),
        Just(MachineDesc::copy_unit(4, 4)),
        Just(MachineDesc::copy_unit(8, 2)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn full_pipeline_is_bit_exact(fam in family(), u in 1usize..7, m in machine(), trip in 1u32..40) {
        let body = fam.build(0, u, trip);
        let cfg = PartitionConfig::default();
        let ideal_m = MachineDesc::monolithic(m.issue_width());
        let ddg = build_ddg(&body, &m.latencies);
        let ideal = schedule_loop(&SchedProblem::ideal(&body, &ideal_m), &ddg, &ImsConfig::default()).unwrap();
        let slack = compute_slack(&ddg, |op| m.latencies.of(body.op(op).opcode) as i64);
        let rcg = build_rcg(&body, &ideal, &slack, &cfg);
        let caps: Vec<usize> = m.clusters.iter().map(|c| c.n_fus).collect();
        let part = assign_banks_caps(&rcg, &caps, &cfg);
        let clustered = insert_copies(&body, &part);
        let cddg = build_ddg(&clustered.body, &m.latencies);
        let problem = SchedProblem::clustered(&clustered.body, &m, &clustered.cluster_of);
        let sched = schedule_loop(&problem, &cddg, &ImsConfig::default()).unwrap();
        prop_assert!(check_equivalence(&clustered.body, &sched, &m.latencies).is_ok());
        // And the rewrite itself is semantics-preserving.
        prop_assert_eq!(run_reference(&body).memory, run_reference(&clustered.body).memory);
        // Down to physical registers: colour each bank and execute the
        // renamed code — still bit-exact (spill-free at paper-scale banks).
        let alloc = allocate(&clustered.body, &cddg, &sched, &clustered.vreg_bank, &m);
        if alloc.total_spills() == 0 {
            prop_assert!(check_physical_equivalence(
                &clustered.body, &sched, &m.latencies, &clustered.vreg_bank, &alloc
            ).is_ok());
        }
    }

    #[test]
    fn reference_trip_monotone_consistency(fam in family(), u in 1usize..5) {
        // Running trip T then comparing with trip T on a fresh copy is
        // deterministic (memory init shared).
        let a = fam.build(0, u, 24);
        let b = fam.build(0, u, 24);
        prop_assert_eq!(run_reference(&a), run_reference(&b));
    }
}
