//! Equivalence oracle: pipelined execution vs scalar reference.

use crate::machine_sim::{simulate, SimError};
use crate::reference::run_reference;
use vliw_ir::Loop;
use vliw_machine::LatencyTable;
use vliw_sched::Schedule;

/// Why the pipelined execution disagreed with the reference.
#[derive(Debug, Clone, PartialEq)]
pub enum EquivError {
    /// The simulation itself faulted (timing/undefined read).
    Sim(SimError),
    /// An array cell differs.
    Memory {
        /// Array index.
        array: usize,
        /// Element index.
        index: usize,
    },
    /// A live-out register differs.
    LiveOut {
        /// Position in `body.live_out`.
        position: usize,
    },
}

impl std::fmt::Display for EquivError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EquivError::Sim(e) => write!(f, "simulation fault: {e}"),
            EquivError::Memory { array, index } => {
                write!(f, "memory mismatch at array {array}[{index}]")
            }
            EquivError::LiveOut { position } => write!(f, "live-out #{position} mismatch"),
        }
    }
}

impl std::error::Error for EquivError {}

/// Run `sched` through the cycle-accurate simulator and the loop through the
/// scalar reference, and compare every array element and live-out value
/// bit-for-bit.
pub fn check_equivalence(
    body: &Loop,
    sched: &Schedule,
    lat: &LatencyTable,
) -> Result<(), EquivError> {
    match equivalence_failures(body, sched, lat).into_iter().next() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Like [`check_equivalence`], but collect **every** divergence — each
/// mismatching array cell and live-out — instead of stopping at the first.
/// Feeds the `SIM006` diagnostics of `vliw-analysis`, so one broken
/// transformation reports its full blast radius.
pub fn equivalence_failures(body: &Loop, sched: &Schedule, lat: &LatencyTable) -> Vec<EquivError> {
    let sim = match simulate(body, sched, lat) {
        Ok(s) => s,
        Err(e) => return vec![EquivError::Sim(e)],
    };
    let reference = run_reference(body);
    let mut out = Vec::new();
    for (a, (ma, mr)) in sim.memory.iter().zip(&reference.memory).enumerate() {
        for (i, (va, vr)) in ma.iter().zip(mr).enumerate() {
            if !va.bits_eq(*vr) {
                out.push(EquivError::Memory { array: a, index: i });
            }
        }
    }
    for (p, (vs, vr)) in sim.live_out.iter().zip(&reference.live_out).enumerate() {
        if !vs.bits_eq(*vr) {
            out.push(EquivError::LiveOut { position: p });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_core::{assign_banks, build_rcg, insert_copies, PartitionConfig};
    use vliw_ddg::{build_ddg, compute_slack};
    use vliw_ir::{LoopBuilder, RegClass};
    use vliw_machine::MachineDesc;
    use vliw_sched::{schedule_loop, ImsConfig, SchedProblem};

    /// Full §4 pipeline on one loop, then check end-to-end equivalence.
    fn full_pipeline_equiv(machine: &MachineDesc, body: &vliw_ir::Loop) {
        let ideal_machine = MachineDesc::monolithic(machine.issue_width());
        let ddg = build_ddg(body, &machine.latencies);
        let ideal = schedule_loop(
            &SchedProblem::ideal(body, &ideal_machine),
            &ddg,
            &ImsConfig::default(),
        )
        .unwrap();
        let slack = compute_slack(&ddg, |op| machine.latencies.of(body.op(op).opcode) as i64);
        let cfg = PartitionConfig::default();
        let rcg = build_rcg(body, &ideal, &slack, &cfg);
        let part = assign_banks(&rcg, machine.n_clusters(), &cfg);
        let clustered = insert_copies(body, &part);
        assert!(clustered.all_operands_local());
        let cddg = build_ddg(&clustered.body, &machine.latencies);
        let problem = SchedProblem::clustered(&clustered.body, machine, &clustered.cluster_of);
        let sched = schedule_loop(&problem, &cddg, &ImsConfig::default()).unwrap();
        vliw_sched::verify_schedule(&problem, &cddg, &sched).unwrap();
        check_equivalence(&clustered.body, &sched, &machine.latencies).unwrap();
        // The rewritten loop must still compute what the original computed.
        let orig = crate::reference::run_reference(body);
        let rewritten = crate::reference::run_reference(&clustered.body);
        assert_eq!(orig.memory, rewritten.memory);
    }

    fn daxpy() -> vliw_ir::Loop {
        let mut b = LoopBuilder::new("daxpy");
        let x = b.array("x", RegClass::Float, 256);
        let y = b.array("y", RegClass::Float, 256);
        let a = b.live_in_float_val("a", 1.5);
        for u in 0..4i64 {
            let xv = b.load(x, u, 4);
            let yv = b.load(y, u, 4);
            let p = b.fmul(a, xv);
            let s = b.fadd(yv, p);
            b.store(y, u, 4, s);
        }
        b.finish(64)
    }

    #[test]
    fn clustered_daxpy_embedded_2x8() {
        full_pipeline_equiv(&MachineDesc::embedded(2, 8), &daxpy());
    }

    #[test]
    fn clustered_daxpy_copy_unit_4x4() {
        full_pipeline_equiv(&MachineDesc::copy_unit(4, 4), &daxpy());
    }

    #[test]
    fn clustered_recurrence_8x2() {
        let mut b = LoopBuilder::new("rec");
        let x = b.array("x", RegClass::Float, 128);
        let a = b.live_in_float_val("a", 0.5);
        let s = b.live_in_float_val("s", 0.0);
        let xv = b.load(x, 0, 1);
        let t = b.fmul(a, s);
        b.fadd_into(s, t, xv);
        b.live_out(s);
        let l = b.finish(100);
        full_pipeline_equiv(&MachineDesc::embedded(8, 2), &l);
        full_pipeline_equiv(&MachineDesc::copy_unit(8, 2), &l);
    }

    #[test]
    fn equivalence_catches_wrong_memory() {
        // Mutate the loop after scheduling: reference and sim then disagree.
        let mut b = LoopBuilder::new("mut");
        let x = b.array("x", RegClass::Float, 16);
        let v = b.load(x, 0, 1);
        let c = b.fconst_new(2.0);
        let w = b.fmul(v, c);
        b.store(x, 0, 1, w);
        let l = b.finish(8);
        let m = MachineDesc::monolithic(4);
        let ddg = build_ddg(&l, &m.latencies);
        let sched =
            schedule_loop(&SchedProblem::ideal(&l, &m), &ddg, &ImsConfig::default()).unwrap();
        // Sanity: unmutated passes.
        check_equivalence(&l, &sched, &m.latencies).unwrap();
        let mut l2 = l.clone();
        l2.ops[1].fimm_bits = Some(3.0f64.to_bits());
        // Simulate the mutated loop against the ORIGINAL... both sides see
        // the same mutated loop, so instead change only what the simulator
        // sees by giving it a schedule for l but the body l2 — that is not
        // representable; assert instead that changing the constant changes
        // the output (guards against a vacuous oracle).
        let out1 = crate::reference::run_reference(&l);
        let out2 = crate::reference::run_reference(&l2);
        assert_ne!(out1.memory, out2.memory);
    }
}
