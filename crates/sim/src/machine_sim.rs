//! Cycle-accurate execution of an expanded modulo schedule.
//!
//! Iterations overlap exactly as the schedule dictates; every register read
//! is checked against the producing write's ready time, so an illegal
//! schedule faults instead of silently computing the right answer.

use crate::memory::init_memory;
use crate::value::{eval_op, Value};
use std::collections::HashMap;
use vliw_ir::{InitVal, Loop, Opcode, VReg};
use vliw_machine::LatencyTable;
use vliw_sched::{expand, FlatProgram, Schedule};

/// A simulation fault.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// An operation read register `vreg` (iteration `iter`) at `cycle`, but
    /// the producing write is only ready at `ready`.
    NotReady {
        /// Register read too early.
        vreg: VReg,
        /// Producing iteration.
        iter: i64,
        /// Cycle of the offending read.
        cycle: i64,
        /// Cycle the value becomes readable.
        ready: i64,
    },
    /// An operation read a register instance that is never written and is
    /// not live-in (schedule or rewrite bug).
    UndefinedRead {
        /// The register.
        vreg: VReg,
        /// The iteration whose value was requested.
        iter: i64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::NotReady {
                vreg,
                iter,
                cycle,
                ready,
            } => write!(
                f,
                "{vreg} (iter {iter}) read at cycle {cycle} but ready at {ready}"
            ),
            SimError::UndefinedRead { vreg, iter } => {
                write!(f, "{vreg} (iter {iter}) read but never written")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Result of a machine simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutput {
    /// Final contents of every array.
    pub memory: Vec<Vec<Value>>,
    /// Final values of the live-out registers, in `body.live_out` order.
    pub live_out: Vec<Value>,
    /// Total cycles executed.
    pub cycles: usize,
}

/// Execute `sched` for `body` on latencies `lat`, checking timing.
pub fn simulate(body: &Loop, sched: &Schedule, lat: &LatencyTable) -> Result<SimOutput, SimError> {
    let program: FlatProgram = expand(body, sched);
    simulate_flat(body, sched, &program, lat)
}

/// Which operand slots of each op read the *previous* iteration's value
/// (textual use-before-def of a loop-variant register).
fn reads_prev_table(body: &Loop) -> Vec<Vec<bool>> {
    let mut first_def: Vec<Option<usize>> = vec![None; body.n_vregs()];
    for op in &body.ops {
        if let Some(d) = op.def {
            first_def[d.index()].get_or_insert(op.id.index());
        }
    }
    body.ops
        .iter()
        .map(|op| {
            op.uses
                .iter()
                .map(|u| match first_def[u.index()] {
                    Some(fd) => fd >= op.id.index(),
                    None => false, // invariant: read the live-in value
                })
                .collect()
        })
        .collect()
}

fn live_in_value(body: &Loop, v: VReg) -> Option<Value> {
    body.live_in
        .iter()
        .position(|&x| x == v)
        .map(|p| match body.live_in_vals[p] {
            InitVal::Int(i) => Value::I(i),
            InitVal::Float(b) => Value::F(f64::from_bits(b)),
        })
}

fn simulate_flat(
    body: &Loop,
    sched: &Schedule,
    program: &FlatProgram,
    lat: &LatencyTable,
) -> Result<SimOutput, SimError> {
    let mut memory = init_memory(body);
    let reads_prev = reads_prev_table(body);
    // Committed register writes: (vreg, iteration) → (ready cycle, value).
    let mut writes: HashMap<(VReg, i64), (i64, Value)> = HashMap::new();
    // Pending stores: (commit cycle, array, index, value).
    let mut pending_stores: Vec<(i64, usize, usize, Value)> = Vec::new();

    let read = |writes: &HashMap<(VReg, i64), (i64, Value)>,
                v: VReg,
                iter: i64,
                cycle: i64|
     -> Result<Value, SimError> {
        // Variant register: find the requested iteration's write; fall back
        // through earlier iterations to the live-in seed.
        match writes.get(&(v, iter)) {
            Some(&(ready, val)) => {
                if cycle < ready {
                    Err(SimError::NotReady {
                        vreg: v,
                        iter,
                        cycle,
                        ready,
                    })
                } else {
                    Ok(val)
                }
            }
            None => {
                if iter < 0 || body.defs_of(v).is_empty() {
                    live_in_value(body, v).ok_or(SimError::UndefinedRead { vreg: v, iter })
                } else {
                    Err(SimError::UndefinedRead { vreg: v, iter })
                }
            }
        }
    };

    for (cycle, issues) in program.cycles.iter().enumerate() {
        let cycle = cycle as i64;
        // Commit stores whose latency has elapsed.
        pending_stores.retain(|&(commit, arr, idx, val)| {
            if commit <= cycle {
                memory[arr][idx] = val;
                false
            } else {
                true
            }
        });

        // Phase 1: evaluate all reads of this cycle.
        let mut results: Vec<(VReg, i64, i64, Value)> = Vec::new(); // (reg, iter, ready, value)
        for iss in issues {
            let op = body.op(iss.op);
            let i = iss.iter as i64;
            let op_lat = lat.of(op.opcode) as i64;
            match op.opcode {
                Opcode::Load => {
                    let m = op.mem.unwrap();
                    let idx = (m.offset + i * m.stride) as usize;
                    let v = memory[m.array.index()][idx];
                    results.push((op.def.unwrap(), i, cycle + op_lat, v));
                }
                Opcode::Store => {
                    let m = op.mem.unwrap();
                    let idx = (m.offset + i * m.stride) as usize;
                    let src_iter = if reads_prev[iss.op.index()][0] {
                        i - 1
                    } else {
                        i
                    };
                    let val = read(&writes, op.uses[0], src_iter, cycle)?;
                    pending_stores.push((cycle + op_lat, m.array.index(), idx, val));
                }
                _ => {
                    let mut operands = Vec::with_capacity(op.uses.len());
                    for (slot, &u) in op.uses.iter().enumerate() {
                        let src_iter = if reads_prev[iss.op.index()][slot] {
                            i - 1
                        } else {
                            i
                        };
                        operands.push(read(&writes, u, src_iter, cycle)?);
                    }
                    let v = eval_op(op, &operands);
                    if let Some(d) = op.def {
                        results.push((d, i, cycle + op_lat, v));
                    }
                }
            }
        }
        // Phase 2: register the writes (visible from `ready` onwards).
        for (d, i, ready, v) in results {
            writes.insert((d, i), (ready, v));
        }
    }

    // Drain remaining stores.
    pending_stores.sort_by_key(|&(c, ..)| c);
    for (_, arr, idx, val) in pending_stores {
        memory[arr][idx] = val;
    }

    // Live-out values: last iteration's write (or live-in seed for a
    // zero-trip loop / pure invariant).
    let last_iter = body.trip_count as i64 - 1;
    let mut live_out = Vec::with_capacity(body.live_out.len());
    let horizon = i64::MAX / 2;
    for &v in &body.live_out {
        let val = if body.defs_of(v).is_empty() || last_iter < 0 {
            live_in_value(body, v).ok_or(SimError::UndefinedRead { vreg: v, iter: -1 })?
        } else {
            read(&writes, v, last_iter, horizon)?
        };
        live_out.push(val);
    }

    let _ = sched;
    Ok(SimOutput {
        memory,
        live_out,
        cycles: program.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ddg::build_ddg;
    use vliw_ir::{LoopBuilder, RegClass};
    use vliw_machine::{ClusterId, MachineDesc};
    use vliw_sched::{schedule_loop, ImsConfig, SchedProblem};

    fn sched_ideal(l: &Loop, m: &MachineDesc) -> Schedule {
        let g = build_ddg(l, &m.latencies);
        let p = SchedProblem::ideal(l, m);
        schedule_loop(&p, &g, &ImsConfig::default()).unwrap()
    }

    #[test]
    fn daxpy_pipeline_matches_reference() {
        let mut b = LoopBuilder::new("daxpy");
        let x = b.array("x", RegClass::Float, 64);
        let y = b.array("y", RegClass::Float, 64);
        let a = b.live_in_float_val("a", 3.0);
        let xv = b.load(x, 0, 1);
        let yv = b.load(y, 0, 1);
        let p = b.fmul(a, xv);
        let s = b.fadd(yv, p);
        b.store(y, 0, 1, s);
        let l = b.finish(64);
        let m = MachineDesc::monolithic(16);
        let sched = sched_ideal(&l, &m);
        let out = simulate(&l, &sched, &m.latencies).unwrap();
        let expected = crate::reference::run_reference(&l);
        assert_eq!(out.memory, expected.memory);
    }

    #[test]
    fn illegal_schedule_faults() {
        let mut b = LoopBuilder::new("bad");
        let x = b.array("x", RegClass::Float, 8);
        let v = b.load(x, 0, 1);
        let w = b.fmul(v, v);
        b.store(x, 0, 1, w);
        let l = b.finish(8);
        let m = MachineDesc::monolithic(4);
        // fmul at cycle 1 but load latency is 2 ⇒ NotReady.
        let sched = Schedule {
            ii: 8,
            times: vec![0, 1, 6],
            clusters: vec![ClusterId(0); 3],
        };
        let err = simulate(&l, &sched, &m.latencies).unwrap_err();
        assert!(matches!(err, SimError::NotReady { .. }));
    }

    #[test]
    fn reduction_pipeline_matches_reference() {
        let mut b = LoopBuilder::new("dot");
        let x = b.array("x", RegClass::Float, 32);
        let y = b.array("y", RegClass::Float, 32);
        let s = b.live_in_float_val("s", 0.0);
        let xv = b.load(x, 0, 1);
        let yv = b.load(y, 0, 1);
        let p = b.fmul(xv, yv);
        b.fadd_into(s, s, p);
        b.live_out(s);
        let l = b.finish(32);
        let m = MachineDesc::monolithic(16);
        let sched = sched_ideal(&l, &m);
        let out = simulate(&l, &sched, &m.latencies).unwrap();
        let expected = crate::reference::run_reference(&l);
        assert_eq!(out.live_out.len(), 1);
        assert!(out.live_out[0].bits_eq(expected.live_out[0]));
    }

    #[test]
    fn stencil_with_carried_memory_dep() {
        // y[i+2] = 0.5 * y[i]: store feeds a load two iterations later.
        let mut b = LoopBuilder::new("st");
        let y = b.array("y", RegClass::Float, 70);
        let v = b.load(y, 0, 1);
        let c = b.fconst_new(0.5);
        let w = b.fmul(v, c);
        b.store(y, 2, 1, w);
        let l = b.finish(64);
        let m = MachineDesc::monolithic(16);
        let sched = sched_ideal(&l, &m);
        let out = simulate(&l, &sched, &m.latencies).unwrap();
        let expected = crate::reference::run_reference(&l);
        assert_eq!(out.memory, expected.memory);
    }

    #[test]
    fn zero_trip_is_a_noop() {
        let mut b = LoopBuilder::new("z");
        let x = b.array("x", RegClass::Float, 8);
        let v = b.load(x, 0, 1);
        b.store(x, 1, 1, v);
        let l = b.finish(0);
        let m = MachineDesc::monolithic(4);
        let sched = sched_ideal(&l, &m);
        let out = simulate(&l, &sched, &m.latencies).unwrap();
        assert_eq!(out.memory, init_memory(&l));
        assert_eq!(out.cycles, 0);
    }
}
