//! Physical-register simulation: execute the final code.
//!
//! [`crate::machine_sim`] validates the *schedule* by tracking values per
//! (virtual register, iteration). This module goes one level lower and
//! validates the *register assignment* too: every value lives in the
//! physical register Chaitin/Briggs gave its MVE instance, in the bank the
//! partitioner chose — exactly the state a real clustered VLIW would hold.
//! A mis-colouring (two overlapping lifetimes sharing a register) silently
//! corrupts a value here and is caught by the bit-exact comparison against
//! the scalar reference.
//!
//! Operation `o` of iteration `i` reads/writes instance `i mod K` of each
//! register (instance `(i−1) mod K` for operands that carry across the
//! backedge), where `K` is the modulo-variable-expansion unroll factor —
//! the renaming a post-pass would bake into the unrolled kernel text.

use crate::machine_sim::SimError;
use crate::memory::init_memory;
use crate::reference::run_reference;
use crate::value::{eval_op, Value};
use std::collections::HashMap;
use vliw_ir::{InitVal, Loop, Opcode, RegClass, VReg};
use vliw_machine::{ClusterId, LatencyTable};
use vliw_regalloc::AllocResult;
use vliw_sched::{expand, Schedule};

/// A physical register name: bank × class × number.
pub type PhysReg = (ClusterId, RegClass, u32);

/// Failure modes specific to physical simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysSimError {
    /// The allocation spilled; there is no physical code to run.
    Spilled,
    /// A timing/undefined-read fault (as in the virtual simulator).
    Sim(SimError),
    /// The physical execution produced different memory than the reference.
    MemoryMismatch {
        /// Array index.
        array: usize,
        /// Element index.
        index: usize,
    },
    /// A live-out register differs from the reference.
    LiveOutMismatch {
        /// Position in `body.live_out`.
        position: usize,
    },
}

impl std::fmt::Display for PhysSimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PhysSimError::Spilled => write!(f, "allocation spilled; no physical code"),
            PhysSimError::Sim(e) => write!(f, "fault: {e}"),
            PhysSimError::MemoryMismatch { array, index } => {
                write!(f, "memory mismatch at array {array}[{index}]")
            }
            PhysSimError::LiveOutMismatch { position } => {
                write!(f, "live-out #{position} mismatch")
            }
        }
    }
}

impl std::error::Error for PhysSimError {}

/// Which operand slots read the previous iteration (shared logic with the
/// virtual simulator, recomputed here to keep the modules independent).
fn reads_prev_table(body: &Loop) -> Vec<Vec<bool>> {
    let mut first_def: Vec<Option<usize>> = vec![None; body.n_vregs()];
    for op in &body.ops {
        if let Some(d) = op.def {
            first_def[d.index()].get_or_insert(op.id.index());
        }
    }
    body.ops
        .iter()
        .map(|op| {
            op.uses
                .iter()
                .map(|u| match first_def[u.index()] {
                    Some(fd) => fd >= op.id.index(),
                    None => false,
                })
                .collect()
        })
        .collect()
}

/// Execute `sched` on physical registers per `alloc`/`vreg_bank` and compare
/// bit-for-bit with the scalar reference.
pub fn check_physical_equivalence(
    body: &Loop,
    sched: &Schedule,
    lat: &LatencyTable,
    vreg_bank: &[ClusterId],
    alloc: &AllocResult,
) -> Result<(), PhysSimError> {
    if alloc.total_spills() > 0 {
        return Err(PhysSimError::Spilled);
    }
    let k = alloc.unroll.max(1) as i64;
    let phys = |v: VReg, iter: i64| -> PhysReg {
        let inst = iter.rem_euclid(k) as usize;
        let row = &alloc.assignment[v.index()];
        // Invariants have a single full-circle range (instance 0 only);
        // spills were rejected above, so a missing instance means exactly
        // that case.
        let n = row[inst].or(row[0]).expect("no spills checked above");
        (vreg_bank[v.index()], body.class_of(v), n)
    };

    let mut memory = init_memory(body);
    let reads_prev = reads_prev_table(body);
    // Register files: physical register → (ready cycle, value).
    let mut regs: HashMap<PhysReg, (i64, Value)> = HashMap::new();
    // Live-in materialisation. Invariants own a single full-circle range
    // (instance 0): preload before cycle 0. A recurrence seed is read by
    // iteration 0's carried use through instance (−1 mod K), whose cyclic
    // range only begins at `t_def − II` — before that the register may
    // legitimately hold a different value (valid colourings share registers
    // between cyclically disjoint ranges). Real prelude code copies each
    // seed in just before its range opens; we model that with a timed seed
    // write at `max(0, t_def − II)`.
    let mut seed_writes: Vec<(i64, PhysReg, Value)> = Vec::new();
    for (&v, &init) in body.live_in.iter().zip(&body.live_in_vals) {
        let val = match init {
            InitVal::Int(i) => Value::I(i),
            InitVal::Float(b) => Value::F(f64::from_bits(b)),
        };
        match body.defs_of(v).first() {
            None => {
                regs.insert(phys(v, 0), (i64::MIN, val));
            }
            Some(&d) => {
                let at = (sched.time(d) - sched.ii as i64).max(0);
                seed_writes.push((at, phys(v, -1), val));
            }
        }
    }
    seed_writes.sort_by_key(|&(c, ..)| c);
    let mut next_seed = 0usize;

    let mut pending_stores: Vec<(i64, usize, usize, Value)> = Vec::new();
    // Live-out capture: in steady state a value's register is recycled as
    // soon as its cyclic range closes, so the FINAL iteration's value may be
    // legitimately overwritten before the loop ends. Real postlude code
    // copies each live-out to a stable home the moment it is produced; we
    // model that by capturing the final iteration's write.
    let last_iter = body.trip_count as i64 - 1;
    let mut live_out_capture: HashMap<VReg, Value> = HashMap::new();
    let program = expand(body, sched);

    for (cycle, issues) in program.cycles.iter().enumerate() {
        let cycle = cycle as i64;
        // Prelude seed moves scheduled for this cycle.
        while next_seed < seed_writes.len() && seed_writes[next_seed].0 <= cycle {
            let (at, r, val) = seed_writes[next_seed];
            regs.insert(r, (at, val));
            next_seed += 1;
        }
        pending_stores.retain(|&(commit, arr, idx, val)| {
            if commit <= cycle {
                memory[arr][idx] = val;
                false
            } else {
                true
            }
        });

        let mut writes: Vec<(PhysReg, i64, Value)> = Vec::new();
        for iss in issues {
            let op = body.op(iss.op);
            let i = iss.iter as i64;
            let op_lat = lat.of(op.opcode) as i64;
            let read = |regs: &HashMap<PhysReg, (i64, Value)>,
                        u: VReg,
                        slot: usize|
             -> Result<Value, PhysSimError> {
                let src_iter = if reads_prev[iss.op.index()][slot] {
                    i - 1
                } else {
                    i
                };
                let r = phys(u, src_iter);
                match regs.get(&r) {
                    Some(&(ready, val)) if cycle >= ready => Ok(val),
                    Some(&(ready, _)) => Err(PhysSimError::Sim(SimError::NotReady {
                        vreg: u,
                        iter: src_iter,
                        cycle,
                        ready,
                    })),
                    None => Err(PhysSimError::Sim(SimError::UndefinedRead {
                        vreg: u,
                        iter: src_iter,
                    })),
                }
            };
            match op.opcode {
                Opcode::Load => {
                    let m = op.mem.unwrap();
                    let idx = (m.offset + i * m.stride) as usize;
                    let v = memory[m.array.index()][idx];
                    let d = op.def.unwrap();
                    writes.push((phys(d, i), cycle + op_lat, v));
                }
                Opcode::Store => {
                    let m = op.mem.unwrap();
                    let idx = (m.offset + i * m.stride) as usize;
                    let val = read(&regs, op.uses[0], 0)?;
                    pending_stores.push((cycle + op_lat, m.array.index(), idx, val));
                }
                _ => {
                    let mut operands = Vec::with_capacity(op.uses.len());
                    for (slot, &u) in op.uses.iter().enumerate() {
                        operands.push(read(&regs, u, slot)?);
                    }
                    let v = eval_op(op, &operands);
                    if let Some(d) = op.def {
                        writes.push((phys(d, i), cycle + op_lat, v));
                        if i == last_iter && body.live_out.contains(&d) {
                            live_out_capture.insert(d, v);
                        }
                    }
                }
            }
            // Loads of live-outs in the final iteration are captured too.
            if let (Opcode::Load, Some(d)) = (op.opcode, op.def) {
                if i == last_iter && body.live_out.contains(&d) {
                    let m = op.mem.unwrap();
                    let idx = (m.offset + i * m.stride) as usize;
                    live_out_capture.insert(d, memory[m.array.index()][idx]);
                }
            }
        }
        for (r, ready, v) in writes {
            regs.insert(r, (ready, v));
        }
    }

    pending_stores.sort_by_key(|&(c, ..)| c);
    for (_, arr, idx, val) in pending_stores {
        memory[arr][idx] = val;
    }

    // Compare against the scalar reference.
    let reference = run_reference(body);
    for (a, (ma, mr)) in memory.iter().zip(&reference.memory).enumerate() {
        for (i, (va, vr)) in ma.iter().zip(mr).enumerate() {
            if !va.bits_eq(*vr) {
                return Err(PhysSimError::MemoryMismatch { array: a, index: i });
            }
        }
    }
    for (p, &v) in body.live_out.iter().enumerate() {
        let expected = reference.live_out[p];
        let got = if body.defs_of(v).is_empty() || last_iter < 0 {
            regs.get(&phys(v, 0)).map(|&(_, val)| val)
        } else {
            live_out_capture.get(&v).copied()
        };
        match got {
            Some(val) if val.bits_eq(expected) => {}
            _ => return Err(PhysSimError::LiveOutMismatch { position: p }),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_core::{assign_banks_caps, build_rcg, insert_copies, PartitionConfig};
    use vliw_ddg::{build_ddg, compute_slack};
    use vliw_ir::{LoopBuilder, RegClass};
    use vliw_machine::MachineDesc;
    use vliw_regalloc::allocate;
    use vliw_sched::{schedule_loop, ImsConfig, SchedProblem};

    /// Full pipeline down to physical registers, then execute.
    fn phys_check(machine: &MachineDesc, body: &Loop) {
        let cfg = PartitionConfig::default();
        let ideal_m = MachineDesc::monolithic(machine.issue_width());
        let ddg = build_ddg(body, &machine.latencies);
        let ideal = schedule_loop(
            &SchedProblem::ideal(body, &ideal_m),
            &ddg,
            &ImsConfig::default(),
        )
        .unwrap();
        let slack = compute_slack(&ddg, |op| machine.latencies.of(body.op(op).opcode) as i64);
        let rcg = build_rcg(body, &ideal, &slack, &cfg);
        let caps: Vec<usize> = machine.clusters.iter().map(|c| c.n_fus).collect();
        let part = assign_banks_caps(&rcg, &caps, &cfg);
        let clustered = insert_copies(body, &part);
        let cddg = build_ddg(&clustered.body, &machine.latencies);
        let problem = SchedProblem::clustered(&clustered.body, machine, &clustered.cluster_of);
        let sched = schedule_loop(&problem, &cddg, &ImsConfig::default()).unwrap();
        let alloc = allocate(
            &clustered.body,
            &cddg,
            &sched,
            &clustered.vreg_bank,
            machine,
        );
        check_physical_equivalence(
            &clustered.body,
            &sched,
            &machine.latencies,
            &clustered.vreg_bank,
            &alloc,
        )
        .unwrap_or_else(|e| panic!("{}: {e}", body.name));
    }

    fn daxpy(u: usize) -> Loop {
        let mut b = LoopBuilder::new("daxpy");
        let x = b.array("x", RegClass::Float, 1024);
        let y = b.array("y", RegClass::Float, 1024);
        let a = b.live_in_float_val("a", 1.5);
        for j in 0..u as i64 {
            let xv = b.load(x, j, u as i64);
            let yv = b.load(y, j, u as i64);
            let p = b.fmul(a, xv);
            let s = b.fadd(yv, p);
            b.store(y, j, u as i64, s);
        }
        b.finish(96)
    }

    #[test]
    fn physical_daxpy_on_clustered_machines() {
        for m in [
            MachineDesc::monolithic(16),
            MachineDesc::embedded(2, 8),
            MachineDesc::embedded(4, 4),
            MachineDesc::copy_unit(4, 4),
            MachineDesc::embedded(8, 2),
        ] {
            phys_check(&m, &daxpy(8));
        }
    }

    #[test]
    fn physical_recurrence_seed_survives_renaming() {
        let mut b = LoopBuilder::new("rec");
        let x = b.array("x", RegClass::Float, 128);
        let a = b.live_in_float_val("a", 0.5);
        let s = b.live_in_float_val("s", 3.0);
        let xv = b.load(x, 0, 1);
        let t = b.fmul(a, s);
        b.fadd_into(s, t, xv);
        b.live_out(s);
        let l = b.finish(64);
        phys_check(&MachineDesc::embedded(4, 4), &l);
        phys_check(&MachineDesc::copy_unit(2, 8), &l);
    }

    #[test]
    fn corrupted_allocation_is_caught() {
        // Take a valid allocation, then force two live MVE instances of
        // different registers onto one physical register — physical
        // execution must diverge from the reference.
        let body = daxpy(8);
        let m = MachineDesc::monolithic(16);
        let cfg = PartitionConfig::default();
        let ddg = build_ddg(&body, &m.latencies);
        let ideal =
            schedule_loop(&SchedProblem::ideal(&body, &m), &ddg, &ImsConfig::default()).unwrap();
        let slack = compute_slack(&ddg, |op| m.latencies.of(body.op(op).opcode) as i64);
        let rcg = build_rcg(&body, &ideal, &slack, &cfg);
        let part = assign_banks_caps(&rcg, &[16], &cfg);
        let clustered = insert_copies(&body, &part);
        let cddg = build_ddg(&clustered.body, &m.latencies);
        let problem = SchedProblem::clustered(&clustered.body, &m, &clustered.cluster_of);
        let sched = schedule_loop(&problem, &cddg, &ImsConfig::default()).unwrap();
        let mut alloc = allocate(&clustered.body, &cddg, &sched, &clustered.vreg_bank, &m);
        // Clobber: alias the two loads of lane 0 (both float, same bank).
        let v1 = vliw_ir::VReg(1); // first load's dest
        let v2 = vliw_ir::VReg(2); // second load's dest
        for inst in 0..alloc.unroll as usize {
            alloc.assignment[v2.index()][inst] = alloc.assignment[v1.index()][inst];
        }
        let r = check_physical_equivalence(
            &clustered.body,
            &sched,
            &m.latencies,
            &clustered.vreg_bank,
            &alloc,
        );
        assert!(r.is_err(), "aliased registers must corrupt the result");
    }

    #[test]
    fn spilled_allocation_is_rejected() {
        let body = daxpy(8);
        let m = MachineDesc::monolithic(16).with_regs_per_bank(2, 2);
        let ddg = build_ddg(&body, &m.latencies);
        let sched =
            schedule_loop(&SchedProblem::ideal(&body, &m), &ddg, &ImsConfig::default()).unwrap();
        let banks = vec![ClusterId(0); body.n_vregs()];
        let alloc = allocate(&body, &ddg, &sched, &banks, &m);
        assert!(alloc.total_spills() > 0);
        let r = check_physical_equivalence(&body, &sched, &m.latencies, &banks, &alloc);
        assert_eq!(r, Err(PhysSimError::Spilled));
    }
}
