//! Runtime values and deterministic operation semantics shared by the
//! reference interpreter and the machine simulator.
//!
//! Both interpreters MUST evaluate an operation identically, so the
//! semantics live here once: integer arithmetic wraps, division by zero
//! yields zero (totalised so property tests cannot crash either side), and
//! floating point is ordinary IEEE f64.

use vliw_ir::{AluKind, Operation};

/// A runtime value: integer or floating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Value {
    /// As integer (floats truncate).
    pub fn as_i(self) -> i64 {
        match self {
            Value::I(i) => i,
            Value::F(f) => f as i64,
        }
    }

    /// As float (ints convert).
    pub fn as_f(self) -> f64 {
        match self {
            Value::I(i) => i as f64,
            Value::F(f) => f,
        }
    }

    /// Bitwise equality (distinguishes float payloads exactly; used by the
    /// equivalence checker).
    pub fn bits_eq(self, other: Value) -> bool {
        match (self, other) {
            (Value::I(a), Value::I(b)) => a == b,
            (Value::F(a), Value::F(b)) => a.to_bits() == b.to_bits(),
            _ => false,
        }
    }
}

/// Evaluate a non-memory operation over its operand values.
///
/// `operands` are the values of `op.uses` in order. Loads/stores are handled
/// by the interpreters (they need memory); passing them here panics.
pub fn eval_op(op: &Operation, operands: &[Value]) -> Value {
    use vliw_ir::Opcode::*;
    match op.opcode {
        IntAlu => {
            let a = operands[0].as_i();
            let b = match operands.get(1) {
                Some(v) => v.as_i(),
                None => op.imm.unwrap_or(0),
            };
            Value::I(match op.alu {
                AluKind::Add => a.wrapping_add(b),
                AluKind::Sub => a.wrapping_sub(b),
                AluKind::Mul => a.wrapping_mul(b),
                AluKind::Div => safe_idiv(a, b),
            })
        }
        IntMul => Value::I(operands[0].as_i().wrapping_mul(operands[1].as_i())),
        IntDiv => Value::I(safe_idiv(operands[0].as_i(), operands[1].as_i())),
        FAlu => {
            let (a, b) = (operands[0].as_f(), operands[1].as_f());
            Value::F(match op.alu {
                AluKind::Add => a + b,
                AluKind::Sub => a - b,
                AluKind::Mul => a * b,
                AluKind::Div => safe_fdiv(a, b),
            })
        }
        FMul => Value::F(operands[0].as_f() * operands[1].as_f()),
        FDiv => Value::F(safe_fdiv(operands[0].as_f(), operands[1].as_f())),
        LoadImmInt => Value::I(op.imm.unwrap_or(0)),
        LoadImmFloat => Value::F(op.fimm().unwrap_or(0.0)),
        CopyInt | CopyFloat => operands[0],
        Load | Store => panic!("memory ops are interpreted by the simulators"),
    }
}

/// Totalised integer division: `x / 0 = 0`, `i64::MIN / -1` wraps.
pub fn safe_idiv(a: i64, b: i64) -> i64 {
    if b == 0 {
        0
    } else {
        a.wrapping_div(b)
    }
}

/// Totalised float division: `x / 0.0 = 0.0` (keeps NaN/Inf out of the
/// corpus so bitwise comparison stays meaningful).
pub fn safe_fdiv(a: f64, b: f64) -> f64 {
    if b == 0.0 {
        0.0
    } else {
        a / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ir::{OpId, Opcode, VReg};

    fn op(opcode: Opcode, alu: AluKind, n_uses: usize, imm: Option<i64>) -> Operation {
        Operation {
            id: OpId(0),
            opcode,
            alu,
            def: Some(VReg(9)),
            uses: (0..n_uses as u32).map(VReg).collect(),
            imm,
            fimm_bits: None,
            mem: None,
        }
    }

    #[test]
    fn int_arith_wraps() {
        let o = op(Opcode::IntAlu, AluKind::Add, 2, None);
        let r = eval_op(&o, &[Value::I(i64::MAX), Value::I(1)]);
        assert_eq!(r, Value::I(i64::MIN));
    }

    #[test]
    fn int_alu_with_immediate() {
        let o = op(Opcode::IntAlu, AluKind::Add, 1, Some(5));
        assert_eq!(eval_op(&o, &[Value::I(10)]), Value::I(15));
    }

    #[test]
    fn division_is_total() {
        assert_eq!(safe_idiv(5, 0), 0);
        assert_eq!(safe_fdiv(5.0, 0.0), 0.0);
        let o = op(Opcode::IntDiv, AluKind::Div, 2, None);
        assert_eq!(eval_op(&o, &[Value::I(7), Value::I(0)]), Value::I(0));
        assert_eq!(eval_op(&o, &[Value::I(7), Value::I(2)]), Value::I(3));
    }

    #[test]
    fn copies_are_identity() {
        let o = op(Opcode::CopyFloat, AluKind::Add, 1, None);
        let v = Value::F(3.25);
        assert!(eval_op(&o, &[v]).bits_eq(v));
    }

    #[test]
    fn float_ops() {
        let m = op(Opcode::FMul, AluKind::Mul, 2, None);
        assert_eq!(eval_op(&m, &[Value::F(2.0), Value::F(3.5)]), Value::F(7.0));
        let s = op(Opcode::FAlu, AluKind::Sub, 2, None);
        assert_eq!(eval_op(&s, &[Value::F(2.0), Value::F(3.5)]), Value::F(-1.5));
    }

    #[test]
    fn bits_eq_discriminates() {
        assert!(Value::I(3).bits_eq(Value::I(3)));
        assert!(!Value::I(3).bits_eq(Value::F(3.0)));
        assert!(!Value::F(0.0).bits_eq(Value::F(-0.0)));
    }
}
