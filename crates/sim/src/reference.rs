//! The scalar reference interpreter: ground-truth loop semantics.

use crate::memory::init_memory;
use crate::value::{eval_op, Value};
use vliw_ir::{InitVal, Loop, Opcode, RegClass, VReg};

/// Result of a reference run.
#[derive(Debug, Clone, PartialEq)]
pub struct RefOutput {
    /// Final contents of every array.
    pub memory: Vec<Vec<Value>>,
    /// Final values of the live-out registers, in `body.live_out` order.
    pub live_out: Vec<Value>,
}

fn init_regs(body: &Loop) -> Vec<Value> {
    let mut regs: Vec<Value> = body
        .vreg_classes
        .iter()
        .map(|c| match c {
            RegClass::Int => Value::I(0),
            RegClass::Float => Value::F(0.0),
        })
        .collect();
    for (&v, &init) in body.live_in.iter().zip(&body.live_in_vals) {
        regs[v.index()] = match init {
            InitVal::Int(i) => Value::I(i),
            InitVal::Float(b) => Value::F(f64::from_bits(b)),
        };
    }
    regs
}

/// Execute `body` sequentially for its trip count and return the final
/// memory and live-out state.
pub fn run_reference(body: &Loop) -> RefOutput {
    let mut memory = init_memory(body);
    let mut regs = init_regs(body);

    for i in 0..body.trip_count as i64 {
        for op in &body.ops {
            match op.opcode {
                Opcode::Load => {
                    let m = op.mem.expect("load has mem");
                    let idx = (m.offset + i * m.stride) as usize;
                    let v = memory[m.array.index()][idx];
                    regs[op.def.unwrap().index()] = v;
                }
                Opcode::Store => {
                    let m = op.mem.expect("store has mem");
                    let idx = (m.offset + i * m.stride) as usize;
                    memory[m.array.index()][idx] = regs[op.uses[0].index()];
                }
                _ => {
                    let operands: Vec<Value> = op.uses.iter().map(|u| regs[u.index()]).collect();
                    let v = eval_op(op, &operands);
                    if let Some(d) = op.def {
                        regs[d.index()] = v;
                    }
                }
            }
        }
    }

    let live_out = body
        .live_out
        .iter()
        .map(|v: &VReg| regs[v.index()])
        .collect();
    RefOutput { memory, live_out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ir::{LoopBuilder, RegClass};

    #[test]
    fn dot_product_matches_hand_computation() {
        let mut b = LoopBuilder::new("dot");
        let x = b.array("x", RegClass::Float, 8);
        let y = b.array("y", RegClass::Float, 8);
        let s = b.live_in_float_val("s", 0.0);
        let xv = b.load(x, 0, 1);
        let yv = b.load(y, 0, 1);
        let p = b.fmul(xv, yv);
        b.fadd_into(s, s, p);
        b.live_out(s);
        let l = b.finish(8);

        let out = run_reference(&l);
        let mem = init_memory(&l);
        let expected: f64 = (0..8).map(|i| mem[0][i].as_f() * mem[1][i].as_f()).sum();
        assert!(out.live_out[0].bits_eq(Value::F(expected)));
    }

    #[test]
    fn store_updates_memory() {
        let mut b = LoopBuilder::new("scale");
        let x = b.array("x", RegClass::Float, 4);
        let c = b.fconst_new(2.0);
        let v = b.load(x, 0, 1);
        let m = b.fmul(v, c);
        b.store(x, 0, 1, m);
        let l = b.finish(4);
        let out = run_reference(&l);
        let init = init_memory(&l);
        for (o, i) in out.memory[0].iter().zip(&init[0]).take(4) {
            assert!(o.bits_eq(Value::F(i.as_f() * 2.0)));
        }
    }

    #[test]
    fn use_before_def_reads_previous_iteration() {
        // t = s (prev); s = t + 1  ⇒ after n trips, s = s0 + n.
        let mut b = LoopBuilder::new("ubd");
        let s = b.live_in_float_val("s", 10.0);
        let one = b.fconst_new(1.0);
        let t = b.fmul(s, one); // reads previous s (t defined after? no: t fresh)
        b.fadd_into(s, t, one);
        b.live_out(s);
        let l = b.finish(5);
        let out = run_reference(&l);
        assert!(out.live_out[0].bits_eq(Value::F(15.0)));
    }

    #[test]
    fn first_order_recurrence() {
        // s = 0.5*s + 1.0, s0 = 0 ⇒ s_n = 2(1 − 0.5^n).
        let mut b = LoopBuilder::new("rec");
        let s = b.live_in_float_val("s", 0.0);
        let half = b.fconst_new(0.5);
        let one = b.fconst_new(1.0);
        let t = b.fmul(half, s);
        b.fadd_into(s, t, one);
        b.live_out(s);
        let l = b.finish(3);
        let out = run_reference(&l);
        // 0 → 1 → 1.5 → 1.75
        assert!(out.live_out[0].bits_eq(Value::F(1.75)));
    }

    #[test]
    fn zero_trip_leaves_state_initial() {
        let mut b = LoopBuilder::new("z");
        let x = b.array("x", RegClass::Float, 4);
        let v = b.load(x, 0, 1);
        b.store(x, 1, 1, v);
        let l = b.finish(0);
        let out = run_reference(&l);
        assert_eq!(out.memory, init_memory(&l));
    }
}
