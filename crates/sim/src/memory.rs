//! Deterministic memory initialisation shared by both interpreters.

use crate::value::Value;
use vliw_ir::{Loop, RegClass};

/// Materialise every array of `body` with deterministic, non-zero contents.
///
/// Element `i` of array `k` is a small mixed function of `(k, i)`: floats in
/// roughly `[-3, +3]` excluding 0, ints in `[-11, +11]` excluding 0 — small
/// enough that integer chains don't immediately wrap and float sums stay
/// well-conditioned, non-zero so divisions exercise real quotients.
pub fn init_memory(body: &Loop) -> Vec<Vec<Value>> {
    body.arrays
        .iter()
        .enumerate()
        .map(|(k, info)| {
            (0..info.len)
                .map(|i| match info.class {
                    RegClass::Float => {
                        let h = ((k as i64 + 1) * 31 + i as i64 * 7) % 13 - 6;
                        let h = if h == 0 { 5 } else { h };
                        Value::F(h as f64 * 0.5)
                    }
                    RegClass::Int => {
                        let h = ((k as i64 + 2) * 13 + i as i64 * 5) % 23 - 11;
                        let h = if h == 0 { 7 } else { h };
                        Value::I(h)
                    }
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ir::LoopBuilder;

    #[test]
    fn init_is_deterministic_and_nonzero() {
        let mut b = LoopBuilder::new("m");
        b.array("x", RegClass::Float, 32);
        b.array("n", RegClass::Int, 16);
        let l = b.finish(1);
        let m1 = init_memory(&l);
        let m2 = init_memory(&l);
        assert_eq!(m1, m2);
        assert_eq!(m1[0].len(), 32);
        assert_eq!(m1[1].len(), 16);
        for v in &m1[0] {
            assert!(matches!(v, Value::F(f) if *f != 0.0));
        }
        for v in &m1[1] {
            assert!(matches!(v, Value::I(i) if *i != 0));
        }
    }

    #[test]
    fn arrays_differ_from_each_other() {
        let mut b = LoopBuilder::new("m");
        b.array("x", RegClass::Float, 8);
        b.array("y", RegClass::Float, 8);
        let l = b.finish(1);
        let m = init_memory(&l);
        assert_ne!(m[0], m[1]);
    }
}
