//! # vliw-sim — cycle-accurate simulation and the scalar reference oracle
//!
//! The paper reports schedule lengths; it never had to *run* its pipelined
//! loops. This crate closes that gap and serves as the end-to-end
//! correctness oracle for the whole workspace:
//!
//! * [`reference::run_reference`] executes a loop body sequentially, one
//!   iteration at a time, with the IR's program-order semantics — the ground
//!   truth.
//! * [`machine_sim::simulate`] executes the *expanded modulo schedule*
//!   (prelude + kernel + postlude, overlapped iterations) cycle by cycle,
//!   modelling operation latencies: a value written by an operation issued
//!   at cycle `c` is readable at `c + latency`, and stores commit to memory
//!   `store` cycles after issue. Reading a value before it is ready is a
//!   hard simulation error — so an illegal schedule cannot silently produce
//!   the right answer.
//! * [`equiv::check_equivalence`] runs both and compares every array and
//!   every live-out value bit-for-bit (both sides evaluate the same dataflow
//!   in the same per-iteration order, so exact equality is the correct
//!   criterion).
//!
//! Because inserted inter-bank copies are ordinary IR operations, the same
//! oracle validates partitioned, copy-inserted, rescheduled loops — the full
//! §4 pipeline.

#![warn(missing_docs)]

pub mod equiv;
pub mod machine_sim;
pub mod memory;
pub mod phys_sim;
pub mod reference;
pub mod value;

pub use equiv::{check_equivalence, equivalence_failures, EquivError};
pub use machine_sim::{simulate, SimError, SimOutput};
pub use memory::init_memory;
pub use phys_sim::{check_physical_equivalence, PhysReg, PhysSimError};
pub use reference::{run_reference, RefOutput};
pub use value::Value;
