//! Property tests for the RCG and the greedy assignment.

use proptest::prelude::*;
use vliw_core::{
    assign_banks, assign_banks_caps, assign_banks_pinned, insert_copies, round_robin_partition,
    PartitionConfig, RcgGraph,
};
use vliw_ir::{verify_loop, VReg};
use vliw_loopgen::Family;
use vliw_machine::ClusterId;

fn graph() -> impl Strategy<Value = RcgGraph> {
    (
        2usize..20,
        proptest::collection::vec((any::<u8>(), any::<u8>(), -8.0f64..8.0), 0..40),
    )
        .prop_map(|(n, edges)| {
            let mut g = RcgGraph::new(n);
            for (a, b, w) in edges {
                let (a, b) = (a as usize % n, b as usize % n);
                if a != b {
                    g.bump_edge(VReg(a as u32), VReg(b as u32), w);
                    g.bump_node(VReg(a as u32), w.abs());
                }
            }
            g
        })
}

fn family() -> impl Strategy<Value = Family> {
    proptest::sample::select(Family::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn assignment_is_total_and_in_range(g in graph(), banks in 1usize..9) {
        let p = assign_banks(&g, banks, &PartitionConfig::default());
        prop_assert_eq!(p.bank_of.len(), g.n_nodes());
        prop_assert!(p.bank_of.iter().all(|b| b.index() < banks));
        prop_assert_eq!(p.sizes().iter().sum::<usize>(), g.n_nodes());
    }

    #[test]
    fn assignment_is_deterministic(g in graph(), banks in 1usize..5) {
        let cfg = PartitionConfig::default();
        prop_assert_eq!(assign_banks(&g, banks, &cfg), assign_banks(&g, banks, &cfg));
        let caps = vec![2usize; banks];
        prop_assert_eq!(
            assign_banks_caps(&g, &caps, &cfg),
            assign_banks_caps(&g, &caps, &cfg)
        );
    }

    #[test]
    fn pins_always_respected(g in graph(), pin_mask in any::<u32>()) {
        let banks = 4usize;
        let pins: Vec<Option<ClusterId>> = (0..g.n_nodes())
            .map(|i| {
                if (pin_mask >> (i % 32)) & 1 == 1 {
                    Some(ClusterId((i % banks) as u32))
                } else {
                    None
                }
            })
            .collect();
        let p = assign_banks_pinned(&g, &[1; 4], &pins, &PartitionConfig::default());
        for (i, pin) in pins.iter().enumerate() {
            if let Some(b) = pin {
                prop_assert_eq!(p.bank(VReg(i as u32)), *b);
            }
        }
    }

    #[test]
    fn copy_insertion_localises_any_partition(
        fam in family(),
        u in 1usize..6,
        banks in 1usize..5,
    ) {
        // Even an arbitrary (round-robin) partition must be made local.
        let l = fam.build(0, u, 16);
        let part = round_robin_partition(l.n_vregs(), banks);
        let c = insert_copies(&l, &part);
        prop_assert!(verify_loop(&c.body).is_ok());
        prop_assert!(c.all_operands_local());
        // Original op count preserved, plus exactly the copies.
        prop_assert_eq!(c.body.n_ops(), l.n_ops() + c.n_kernel_copies);
        // Single-bank partition never needs copies.
        if banks == 1 {
            prop_assert_eq!(c.n_kernel_copies, 0);
            prop_assert_eq!(c.n_hoisted_copies, 0);
        }
    }

    #[test]
    fn components_partition_the_node_set(g in graph()) {
        let comps = g.positive_components();
        let mut seen = vec![false; g.n_nodes()];
        for comp in &comps {
            for v in comp {
                prop_assert!(!seen[v.index()], "node in two components");
                seen[v.index()] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }
}
