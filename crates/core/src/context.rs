//! Shared per-loop analysis context.
//!
//! Steps 1–2 of the paper's pipeline (§4) — the dependence graph, the slack
//! analysis, RecII, and the ideal schedule on the monolithic twin machine —
//! are pure functions of `(body, machine)`. Before this module each consumer
//! recomputed them independently: every `iterated_partition` round, every
//! point of the weight-tuner's grid, and the pipeline driver each rebuilt the
//! same DDG and re-ran the same ideal schedule. A [`LoopContext`] is built
//! once and shared by all of them.
//!
//! The one invariant that makes the sharing sound: the monolithic twin
//! machine clones `machine.latencies`, so slack computed against the
//! original machine's latency table is *identical* to slack computed from
//! the ideal problem's `latency()` — one [`SlackInfo`] serves the RCG
//! builder, the partitioners, and the modulo scheduler.

use vliw_ddg::{build_ddg, compute_slack, rec_ii, Ddg, SlackInfo};
use vliw_ir::Loop;
use vliw_machine::MachineDesc;
use vliw_sched::{schedule_loop_with, ImsConfig, SchedContext, SchedProblem, Schedule};

/// Everything II-independent about one loop on one machine, plus the ideal
/// schedule derived from it. Built once per (loop, machine) pair.
#[derive(Debug, Clone)]
pub struct LoopContext {
    /// The monolithic twin: same issue width and latencies as the target,
    /// one cluster, one register bank (§4.1's ideal-machine definition).
    pub ideal_machine: MachineDesc,
    /// Dependence graph of the original (pre-copy) body.
    pub ddg: Ddg,
    /// Earliest/latest-start analysis; shared by the RCG builder and the
    /// schedulers (see module docs for why that is sound).
    pub slack: SlackInfo,
    /// Recurrence-constrained lower bound on II of `ddg`.
    pub rec_ii: u32,
    /// The ideal schedule (full width, monolithic bank).
    pub ideal: Schedule,
}

impl LoopContext {
    /// Build the context with Rau's iterative modulo scheduler and default
    /// knobs — what the paper's pipeline uses.
    pub fn new(body: &Loop, machine: &MachineDesc) -> Self {
        Self::with_scheduler(body, machine, |p, g, ctx| {
            schedule_loop_with(p, g, &ImsConfig::default(), ctx).expect("ideal always schedules")
        })
    }

    /// Build the context, producing the ideal schedule with a caller-chosen
    /// scheduler (the pipeline driver dispatches on its `SchedulerKind`
    /// here). The closure receives the ideal problem, the DDG, and the
    /// already-computed [`SchedContext`] so it never recomputes RecII or
    /// slack.
    pub fn with_scheduler<F>(body: &Loop, machine: &MachineDesc, schedule: F) -> Self
    where
        F: FnOnce(&SchedProblem<'_>, &Ddg, &SchedContext) -> Schedule,
    {
        let ideal_machine = MachineDesc::monolithic(machine.issue_width())
            .with_latencies(machine.latencies.clone());
        let ddg = build_ddg(body, &machine.latencies);
        let slack = compute_slack(&ddg, |op| machine.latencies.of(body.op(op).opcode) as i64);
        let rec = rec_ii(&ddg);
        let problem = SchedProblem::ideal(body, &ideal_machine);
        let sctx = SchedContext::from_parts(problem.res_ii(), rec, slack.clone());
        let ideal = schedule(&problem, &ddg, &sctx);
        LoopContext {
            ideal_machine,
            ddg,
            slack,
            rec_ii: rec,
            ideal,
        }
    }

    /// A scheduler context for re-scheduling **this same DDG** under a
    /// problem whose resource bound is `res_ii`. (Not valid for the
    /// post-copy clustered body — that has its own DDG.)
    pub fn sched_context(&self, res_ii: u32) -> SchedContext {
        SchedContext::from_parts(res_ii, self.rec_ii, self.slack.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ir::{LoopBuilder, RegClass};
    use vliw_sched::schedule_loop;

    fn sample() -> Loop {
        let mut b = LoopBuilder::new("ctx");
        let x = b.array("x", RegClass::Float, 128);
        let a = b.live_in_float("a");
        let s = b.live_in_float_val("s", 0.0);
        let xv = b.load(x, 0, 1);
        let t = b.fmul(a, s);
        b.fadd_into(s, t, xv);
        b.live_out(s);
        b.finish(64)
    }

    #[test]
    fn context_reproduces_direct_pipeline_front_end() {
        let l = sample();
        let m = MachineDesc::embedded(2, 4);
        let ctx = LoopContext::new(&l, &m);

        // Same front end computed by hand.
        let ideal_m = MachineDesc::monolithic(m.issue_width()).with_latencies(m.latencies.clone());
        let g = build_ddg(&l, &m.latencies);
        let p = SchedProblem::ideal(&l, &ideal_m);
        let ideal = schedule_loop(&p, &g, &ImsConfig::default()).unwrap();

        assert_eq!(ctx.ideal.ii, ideal.ii);
        assert_eq!(ctx.ideal.times, ideal.times);
        assert_eq!(ctx.rec_ii, rec_ii(&g));
        assert_eq!(ctx.ddg.n_ops(), g.n_ops());
        let direct = compute_slack(&g, |op| m.latencies.of(l.op(op).opcode) as i64);
        assert_eq!(ctx.slack.lstart, direct.lstart);
        assert_eq!(ctx.slack.estart, direct.estart);
    }

    #[test]
    fn slack_from_machine_latencies_matches_ideal_problem_latency() {
        // The invariant that lets one SlackInfo serve both the RCG and the
        // scheduler: the monolithic twin inherits the target's latencies.
        let l = sample();
        let m = MachineDesc::copy_unit(4, 2);
        let ctx = LoopContext::new(&l, &m);
        let p = SchedProblem::ideal(&l, &ctx.ideal_machine);
        let via_problem = compute_slack(&ctx.ddg, |op| p.latency(op));
        assert_eq!(ctx.slack.lstart, via_problem.lstart);
        assert_eq!(ctx.slack.estart, via_problem.estart);
    }

    #[test]
    fn sched_context_carries_rec_ii_and_slack() {
        let l = sample();
        let m = MachineDesc::monolithic(8);
        let ctx = LoopContext::new(&l, &m);
        let sc = ctx.sched_context(3);
        assert_eq!(sc.res_ii, 3);
        assert_eq!(sc.rec_ii, ctx.rec_ii);
        assert_eq!(sc.min_ii(), 3.max(ctx.rec_ii));
    }
}
