//! Copy insertion: rewrite a loop so every operand is local to its
//! operation's cluster (§4 step 4's precondition).
//!
//! After partitioning, each operation executes on the cluster that owns its
//! destination register (stores: the cluster of the stored value). A source
//! register living in another bank is reached through an explicit copy:
//!
//! * **loop-invariant** values are copied once *before* the loop (hoisted —
//!   they cost a live range in the destination bank but no kernel slot);
//! * **loop-variant** values get a kernel copy operation inserted in program
//!   order immediately after the def the use reaches, so the copy reads the
//!   same iteration's value the original use read. Uses that read the
//!   previous iteration's value (textual use-before-def) keep that semantics:
//!   the shadow register is itself read before its def.
//!
//! Copies of the same value into the same cluster are shared.

use crate::greedy::Partition;
use std::collections::HashMap;
use vliw_ir::{AluKind, InitVal, Loop, OpId, Opcode, Operation, VReg};
use vliw_machine::ClusterId;

/// The result of copy insertion: a rewritten loop plus placement metadata.
#[derive(Debug, Clone)]
pub struct ClusteredLoop {
    /// The rewritten body (original ops with substituted operands, plus
    /// copy ops).
    pub body: Loop,
    /// Cluster per (new) operation.
    pub cluster_of: Vec<ClusterId>,
    /// For each new op, the original op it came from (`None` for copies).
    pub orig_op: Vec<Option<OpId>>,
    /// Bank per (new) virtual register.
    pub vreg_bank: Vec<ClusterId>,
    /// Copy operations inserted into the kernel.
    pub n_kernel_copies: usize,
    /// Invariant copies hoisted out of the loop (cost no kernel slot).
    pub n_hoisted_copies: usize,
}

impl ClusteredLoop {
    /// True if every operand of every operation lives in the operation's
    /// cluster — the postcondition of [`insert_copies`].
    pub fn all_operands_local(&self) -> bool {
        self.body.ops.iter().all(|op| {
            let c = self.cluster_of[op.id.index()];
            let src_ok = match op.opcode.is_copy() {
                // A copy's source is by definition remote; its def is local.
                true => true,
                false => op.uses.iter().all(|&u| self.vreg_bank[u.index()] == c),
            };
            let def_ok = op.def.is_none_or(|d| self.vreg_bank[d.index()] == c);
            src_ok && def_ok
        })
    }
}

/// The cluster an original operation executes on under `part`: the bank of
/// its destination register, or of its stored value for stores; operations
/// with neither (impossible in this IR) would default to cluster 0.
pub fn op_cluster(_body: &Loop, part: &Partition, op: &Operation) -> ClusterId {
    match op.def {
        Some(d) => part.bank(d),
        None => op.uses.first().map_or(ClusterId(0), |&u| part.bank(u)),
    }
}

/// Rewrite `body` under the bank assignment `part`, inserting hoisted and
/// kernel copies so that every operand becomes local.
pub fn insert_copies(body: &Loop, part: &Partition) -> ClusteredLoop {
    assert_eq!(part.bank_of.len(), body.n_vregs());
    let n_orig_ops = body.n_ops();

    // Precompute def positions per vreg for reaching-def queries.
    let mut defs_of: Vec<Vec<usize>> = vec![Vec::new(); body.n_vregs()];
    for op in &body.ops {
        if let Some(d) = op.def {
            defs_of[d.index()].push(op.id.index());
        }
    }
    let reaching_def = |u: VReg, use_pos: usize| -> usize {
        let defs = &defs_of[u.index()];
        defs.iter()
            .copied()
            .rfind(|&d| d < use_pos)
            .unwrap_or_else(|| *defs.last().expect("variant use must have a def"))
    };

    // New register table starts as a copy of the original.
    let mut vreg_classes = body.vreg_classes.clone();
    let mut vreg_bank: Vec<ClusterId> = part.bank_of.clone();
    let mut live_in = body.live_in.clone();
    let mut live_in_vals = body.live_in_vals.clone();

    // Shadows for hoisted invariant copies: (reg, cluster) → shadow reg.
    let mut hoisted: HashMap<(VReg, ClusterId), VReg> = HashMap::new();
    // Shadows for kernel copies: (reaching def pos, cluster) → shadow reg.
    let mut kernel: HashMap<(usize, ClusterId), VReg> = HashMap::new();
    // Copy ops to emit after each original position.
    let mut copies_after: Vec<Vec<(VReg, VReg)>> = vec![Vec::new(); n_orig_ops];
    // Per-(op, operand slot) substitution.
    let mut subst: HashMap<(usize, usize), VReg> = HashMap::new();

    let fresh = |classes: &mut Vec<vliw_ir::RegClass>,
                 banks: &mut Vec<ClusterId>,
                 class: vliw_ir::RegClass,
                 bank: ClusterId| {
        let v = VReg(classes.len() as u32);
        classes.push(class);
        banks.push(bank);
        v
    };

    let mut n_hoisted = 0usize;
    for op in &body.ops {
        let c = op_cluster(body, part, op);
        for (slot, &u) in op.uses.iter().enumerate() {
            if part.bank(u) == c {
                continue;
            }
            let shadow = if body.is_invariant(u) {
                *hoisted.entry((u, c)).or_insert_with(|| {
                    n_hoisted += 1;
                    let s = fresh(&mut vreg_classes, &mut vreg_bank, body.class_of(u), c);
                    live_in.push(s);
                    let pos = body.live_in.iter().position(|&x| x == u).unwrap();
                    live_in_vals.push(body.live_in_vals[pos]);
                    s
                })
            } else {
                let rd = reaching_def(u, op.id.index());
                *kernel.entry((rd, c)).or_insert_with(|| {
                    let s = fresh(&mut vreg_classes, &mut vreg_bank, body.class_of(u), c);
                    copies_after[rd].push((s, u));
                    // If `u` carries a seed into the loop (live-in recurrence
                    // accumulator), uses of the shadow that textually precede
                    // the copy read "iteration −1" — which must see the seed.
                    // Generated code materialises this with a one-off
                    // pre-loop copy; in the IR the shadow becomes a live-in.
                    if let Some(pos) = body.live_in.iter().position(|&x| x == u) {
                        live_in.push(s);
                        live_in_vals.push(body.live_in_vals[pos]);
                    }
                    s
                })
            };
            subst.insert((op.id.index(), slot), shadow);
        }
    }

    // Emit the rewritten op stream.
    let mut ops: Vec<Operation> = Vec::with_capacity(n_orig_ops + kernel.len());
    let mut cluster_of: Vec<ClusterId> = Vec::new();
    let mut orig_op: Vec<Option<OpId>> = Vec::new();
    let mut n_kernel_copies = 0usize;

    for op in &body.ops {
        let c = op_cluster(body, part, op);
        let mut new_op = op.clone();
        new_op.id = OpId(ops.len() as u32);
        for (slot, u) in new_op.uses.iter_mut().enumerate() {
            if let Some(&s) = subst.get(&(op.id.index(), slot)) {
                *u = s;
            }
        }
        ops.push(new_op);
        cluster_of.push(c);
        orig_op.push(Some(op.id));

        for &(shadow, src) in &copies_after[op.id.index()] {
            let class = body.class_of(src);
            ops.push(Operation {
                id: OpId(ops.len() as u32),
                opcode: Opcode::copy_for(class),
                alu: AluKind::Add,
                def: Some(shadow),
                uses: vec![src],
                imm: None,
                fimm_bits: None,
                mem: None,
            });
            cluster_of.push(vreg_bank[shadow.index()]);
            orig_op.push(None);
            n_kernel_copies += 1;
        }
    }

    let new_body = Loop {
        name: body.name.clone(),
        ops,
        vreg_classes,
        live_in,
        live_in_vals,
        live_out: body.live_out.clone(),
        arrays: body.arrays.clone(),
        trip_count: body.trip_count,
        nesting_depth: body.nesting_depth,
    };
    debug_assert!(vliw_ir::verify_loop(&new_body).is_ok());

    ClusteredLoop {
        body: new_body,
        cluster_of,
        orig_op,
        vreg_bank,
        n_kernel_copies,
        n_hoisted_copies: n_hoisted,
    }
}

/// Ensure the initial value of a hoisted copy matches its source — helper
/// used by the simulator's live-in setup (exposed for tests).
pub fn hoisted_inits_consistent(c: &ClusteredLoop) -> bool {
    use std::collections::HashMap as Map;
    let inits: Map<VReg, InitVal> = c
        .body
        .live_in
        .iter()
        .copied()
        .zip(c.body.live_in_vals.iter().copied())
        .collect();
    // Every live-in has an init; nothing more to check structurally.
    c.body.live_in.iter().all(|v| inits.contains_key(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ir::{verify_loop, LoopBuilder, RegClass};

    /// daxpy with a deliberately adversarial partition: the multiplier `a`
    /// and the loads live in bank 0, the arithmetic in bank 1.
    fn split_daxpy() -> (Loop, Partition) {
        let mut b = LoopBuilder::new("daxpy");
        let x = b.array("x", RegClass::Float, 64);
        let y = b.array("y", RegClass::Float, 64);
        let a = b.live_in_float("a"); // v0
        let xv = b.load(x, 0, 1); // v1
        let yv = b.load(y, 0, 1); // v2
        let p = b.fmul(a, xv); // v3 = a * xv
        let s = b.fadd(yv, p); // v4 = yv + p
        b.store(y, 0, 1, s);
        let l = b.finish(64);
        let part = Partition {
            bank_of: vec![
                ClusterId(0), // a
                ClusterId(0), // xv
                ClusterId(1), // yv
                ClusterId(1), // p   → fmul runs on cluster 1, needs a and xv
                ClusterId(1), // s
            ],
            n_banks: 2,
        };
        (l, part)
    }

    #[test]
    fn daxpy_copies_inserted_and_local() {
        let (l, part) = split_daxpy();
        let c = insert_copies(&l, &part);
        verify_loop(&c.body).unwrap();
        assert!(c.all_operands_local());
        // `a` is invariant → hoisted; `xv` is variant → kernel copy.
        assert_eq!(c.n_hoisted_copies, 1);
        assert_eq!(c.n_kernel_copies, 1);
        assert_eq!(c.body.n_ops(), l.n_ops() + 1);
        assert!(hoisted_inits_consistent(&c));
        // The fmul now reads two shadows, both in bank 1.
        let fmul = c
            .body
            .ops
            .iter()
            .find(|o| o.opcode == Opcode::FMul)
            .unwrap();
        for &u in &fmul.uses {
            assert_eq!(c.vreg_bank[u.index()], ClusterId(1));
        }
    }

    #[test]
    fn trivial_partition_inserts_nothing() {
        let (l, _) = split_daxpy();
        let part = Partition::trivial(l.n_vregs());
        let c = insert_copies(&l, &part);
        assert_eq!(c.n_kernel_copies, 0);
        assert_eq!(c.n_hoisted_copies, 0);
        assert_eq!(c.body.n_ops(), l.n_ops());
        assert!(c.all_operands_local());
        assert!(c.orig_op.iter().all(|o| o.is_some()));
    }

    #[test]
    fn copies_are_shared_per_cluster() {
        // One value consumed by two ops in the same remote cluster → 1 copy.
        let mut b = LoopBuilder::new("share");
        let x = b.array("x", RegClass::Float, 64);
        let v = b.load(x, 0, 1); // v0
        let p = b.fmul(v, v); // v1
        let q = b.fadd(v, v); // v2
        b.store(x, 0, 1, p);
        let _ = q;
        let l = b.finish(64);
        let part = Partition {
            bank_of: vec![ClusterId(0), ClusterId(1), ClusterId(1)],
            n_banks: 2,
        };
        let c = insert_copies(&l, &part);
        assert_eq!(c.n_kernel_copies, 1);
        assert!(c.all_operands_local());
        verify_loop(&c.body).unwrap();
    }

    #[test]
    fn recurrence_use_before_def_keeps_distance() {
        // t = s*s (reads prev iter); s = t + c. Put the fmul in bank 1,
        // s in bank 0: the copy of s into bank 1 sits after s's def, so the
        // shadow use still reads the previous iteration.
        let mut b = LoopBuilder::new("rec");
        let s = b.live_in_float("s"); // v0
        let t = b.fmul(s, s); // v1 (op0)
        let cst = b.fconst_new(1.0); // v2 (op1)
        b.fadd_into(s, t, cst); // op2
        b.live_out(s);
        let l = b.finish(8);
        let part = Partition {
            bank_of: vec![ClusterId(0), ClusterId(1), ClusterId(0)],
            n_banks: 2,
        };
        let c = insert_copies(&l, &part);
        verify_loop(&c.body).unwrap();
        assert!(c.all_operands_local());
        // s is variant (defined in loop) → kernel copy, not hoisted; also t
        // crosses back into bank 0 for the fadd.
        assert_eq!(c.n_hoisted_copies, 0);
        assert_eq!(c.n_kernel_copies, 2);
        // The copy of s must be placed *after* s's def (the fadd) in program
        // order so its shadow carries the previous iteration's value.
        let copy_pos = c
            .body
            .ops
            .iter()
            .position(|o| o.opcode == Opcode::CopyFloat && o.uses == vec![s])
            .unwrap();
        let fadd_pos = c
            .body
            .ops
            .iter()
            .position(|o| o.opcode == Opcode::FAlu)
            .unwrap();
        assert!(copy_pos > fadd_pos);
    }

    #[test]
    fn seeded_recurrence_shadow_gets_the_seed() {
        // s (live-in seed 7.0) is defined by the fadd and read by a remote
        // fmul that consumes the PREVIOUS iteration's s. The shadow created
        // for the fmul must carry the seed so iteration 0 reads 7.0.
        let mut b = LoopBuilder::new("seed");
        let s = b.live_in_float_val("s", 7.0); // v0
        let t = b.fmul(s, s); // v1, reads prev s
        let c = b.fconst_new(1.0); // v2
        b.fadd_into(s, t, c);
        b.live_out(s);
        let l = b.finish(8);
        let part = Partition {
            bank_of: vec![ClusterId(0), ClusterId(1), ClusterId(1)],
            n_banks: 2,
        };
        let cl = insert_copies(&l, &part);
        verify_loop(&cl.body).unwrap();
        // The shadow of s (used by the fmul on cluster 1) is live-in with
        // the same seed.
        let shadow = cl
            .body
            .ops
            .iter()
            .find(|o| o.opcode == Opcode::CopyFloat && o.uses == vec![s])
            .and_then(|o| o.def)
            .expect("copy of s exists");
        let pos = cl
            .body
            .live_in
            .iter()
            .position(|&v| v == shadow)
            .expect("shadow is live-in");
        assert_eq!(cl.body.live_in_vals[pos], l.live_in_vals[0]);
    }

    #[test]
    fn store_runs_in_its_values_bank() {
        let (l, part) = split_daxpy();
        let c = insert_copies(&l, &part);
        let store_idx = c
            .body
            .ops
            .iter()
            .position(|o| o.opcode == Opcode::Store)
            .unwrap();
        assert_eq!(c.cluster_of[store_idx], ClusterId(1));
    }

    #[test]
    fn orig_op_maps_back() {
        let (l, part) = split_daxpy();
        let c = insert_copies(&l, &part);
        let mapped: Vec<_> = c.orig_op.iter().flatten().collect();
        assert_eq!(mapped.len(), l.n_ops());
        // Copies have no original.
        assert_eq!(
            c.orig_op.iter().filter(|o| o.is_none()).count(),
            c.n_kernel_copies
        );
    }
}
