//! # vliw-core — register component graph partitioning
//!
//! The paper's primary contribution (§4–§5): assign the symbolic registers of
//! a software-pipelined loop to partitioned register banks by building and
//! partitioning the **register component graph (RCG)** — an undirected,
//! weighted graph whose nodes are virtual registers and whose edges connect
//! registers that appear in the same operation (attraction) or that are
//! defined in the same instruction of the ideal schedule (repulsion).
//!
//! The pipeline mirrors §4's five steps:
//!
//! 1. build intermediate code on an infinite register file (`vliw-ir`),
//! 2. schedule it ideally — full width, one monolithic bank (`vliw-sched`),
//! 3. **partition the registers to banks** ([`build_rcg`] + [`assign_banks`]),
//! 4. insert cross-bank copies and re-schedule with operations pinned to the
//!    cluster that owns their operands ([`insert_copies`]),
//! 5. colour each bank with Chaitin/Briggs (`vliw-regalloc`).
//!
//! Besides the paper's greedy heuristic this crate ships the baselines the
//! evaluation compares against conceptually: a BUG-style operation-DAG
//! partitioner (Ellis), round-robin and component-packing assignments, and an
//! iterated refinement extension (§7's future work).

#![warn(missing_docs)]

pub mod baselines;
pub mod config;
pub mod context;
pub mod copyins;
pub mod greedy;
pub mod iterate;
pub mod rcg;
pub mod tune;

pub use baselines::{bug_partition, component_partition, round_robin_partition};
pub use config::PartitionConfig;
pub use context::LoopContext;
pub use copyins::{insert_copies, ClusteredLoop};
pub use greedy::{assign_banks, assign_banks_caps, assign_banks_pinned, Partition};
pub use iterate::{iterated_partition, iterated_partition_ctx};
pub use rcg::{build_rcg, RcgGraph};
pub use tune::{score_config, score_config_ctx, tune_weights, TuneResult};
