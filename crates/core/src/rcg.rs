//! The register component graph (§4.1, §5).

use crate::config::PartitionConfig;
use std::collections::BTreeMap;
use vliw_ddg::SlackInfo;
use vliw_ir::{Loop, VReg};
use vliw_sched::Schedule;

/// Undirected weighted graph over the loop's virtual registers.
///
/// Positive edge weight: the endpoints want the same bank (they appear as
/// def and use of the same operation). Negative: they want different banks
/// (they are defined in the same instruction of the ideal schedule, so
/// placing them apart raises the chance both defining operations issue in
/// the same cycle after partitioning).
#[derive(Debug, Clone)]
pub struct RcgGraph {
    n: usize,
    /// Node weights: accumulated importance of the operations each register
    /// appears in; drives the greedy assignment order.
    weights: Vec<f64>,
    /// Adjacency: `adj[v]` lists `(neighbour, weight)`.
    adj: Vec<Vec<(VReg, f64)>>,
}

impl RcgGraph {
    /// Empty graph over `n` registers.
    pub fn new(n: usize) -> Self {
        RcgGraph {
            n,
            weights: vec![0.0; n],
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of register nodes.
    pub fn n_nodes(&self) -> usize {
        self.n
    }

    /// Node weight of `v`.
    pub fn node_weight(&self, v: VReg) -> f64 {
        self.weights[v.index()]
    }

    /// Add `w` to the node weight of `v`.
    pub fn bump_node(&mut self, v: VReg, w: f64) {
        self.weights[v.index()] += w;
    }

    /// Add `w` to the (undirected) edge `a—b`, creating it if absent.
    pub fn bump_edge(&mut self, a: VReg, b: VReg, w: f64) {
        debug_assert_ne!(a, b, "self-edges are meaningless in the RCG");
        for (from, to) in [(a, b), (b, a)] {
            match self.adj[from.index()].iter_mut().find(|(n, _)| *n == to) {
                Some((_, ew)) => *ew += w,
                None => self.adj[from.index()].push((to, w)),
            }
        }
    }

    /// Weight of edge `a—b` (0.0 if absent).
    pub fn edge_weight(&self, a: VReg, b: VReg) -> f64 {
        self.adj[a.index()]
            .iter()
            .find(|(n, _)| *n == b)
            .map_or(0.0, |(_, w)| *w)
    }

    /// Neighbours of `v` with edge weights.
    pub fn neighbours(&self, v: VReg) -> &[(VReg, f64)] {
        &self.adj[v.index()]
    }

    /// Registers sorted by decreasing node weight (the greedy order of
    /// Fig. 4); ties broken by index for determinism.
    pub fn nodes_by_weight(&self) -> Vec<VReg> {
        let mut order: Vec<VReg> = (0..self.n as u32).map(VReg).collect();
        order.sort_by(|&a, &b| {
            self.weights[b.index()]
                .partial_cmp(&self.weights[a.index()])
                .unwrap()
                .then(a.index().cmp(&b.index()))
        });
        order
    }

    /// Connected components over edges with weight > 0 (the "component"
    /// structure of §4.1: unconnected values are natural candidates for
    /// separate banks).
    pub fn positive_components(&self) -> Vec<Vec<VReg>> {
        let mut comp = vec![usize::MAX; self.n];
        let mut out: Vec<Vec<VReg>> = Vec::new();
        for start in 0..self.n {
            if comp[start] != usize::MAX {
                continue;
            }
            let id = out.len();
            let mut stack = vec![start];
            let mut members = Vec::new();
            comp[start] = id;
            while let Some(i) = stack.pop() {
                members.push(VReg(i as u32));
                for &(nb, w) in &self.adj[i] {
                    if w > 0.0 && comp[nb.index()] == usize::MAX {
                        comp[nb.index()] = id;
                        stack.push(nb.index());
                    }
                }
            }
            members.sort_unstable();
            out.push(members);
        }
        out
    }

    /// Every undirected edge exactly once, as `(a, b, weight)` with
    /// `a < b` — the traversal the cross-stage lints use.
    pub fn edges(&self) -> impl Iterator<Item = (VReg, VReg, f64)> + '_ {
        (0..self.n).flat_map(move |a| {
            self.adj[a]
                .iter()
                .filter(move |(b, _)| b.index() > a)
                .map(move |&(b, w)| (VReg(a as u32), b, w))
        })
    }

    /// Accumulate another RCG over the same register namespace into this
    /// one (used for whole-function partitioning: per-block graphs merge
    /// into one function graph, §6.3 / §7).
    pub fn merge(&mut self, other: &RcgGraph) {
        assert_eq!(self.n, other.n, "merging RCGs over different namespaces");
        for v in 0..self.n {
            self.weights[v] += other.weights[v];
        }
        for a in 0..other.n {
            for &(b, w) in &other.adj[a] {
                if b.index() > a {
                    self.bump_edge(VReg(a as u32), b, w);
                }
            }
        }
    }

    /// Total positive edge weight (for normalising balance penalties in
    /// diagnostics).
    pub fn mean_positive_edge_weight(&self) -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for a in 0..self.n {
            for &(b, w) in &self.adj[a] {
                if b.index() > a && w > 0.0 {
                    sum += w;
                    count += 1;
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }
}

/// Build the RCG of `body` from its **ideal schedule** (§4.1: "we have found
/// it useful to build the graph from … an 'ideal' instruction schedule").
///
/// * For every operation `O` with def `d` and use `s`, the edge `d—s` and
///   both node weights gain `importance(O)` — attraction.
/// * For every pair of operations issued in the same ideal-kernel row with
///   defs `d₁ ≠ d₂`, the edge `d₁—d₂` loses
///   `repulse_factor · min(importance)` — repulsion.
///
/// `importance(O) = crit(O) · density · depth^… / Flexibility(O)` per
/// [`PartitionConfig::importance`]; density is the DDD-density of the block
/// (ops per ideal instruction), Flexibility is slack+1 from `slack`.
pub fn build_rcg(
    body: &Loop,
    ideal: &Schedule,
    slack: &SlackInfo,
    cfg: &PartitionConfig,
) -> RcgGraph {
    let mut g = RcgGraph::new(body.n_vregs());
    let density = body.n_ops() as f64 / ideal.ii as f64;
    let depth = body.nesting_depth;

    let imp = |opidx: usize| {
        cfg.importance(
            slack.flexibility(vliw_ir::OpId(opidx as u32)),
            density,
            depth,
        )
    };

    // Attraction: def—use pairs within each operation.
    for op in &body.ops {
        let Some(d) = op.def else { continue };
        let w = imp(op.id.index());
        let mut seen: Vec<VReg> = Vec::with_capacity(2);
        for &s in &op.uses {
            if s == d || seen.contains(&s) {
                continue; // self-recurrence operand or duplicate use
            }
            seen.push(s);
            g.bump_edge(d, s, w);
            g.bump_node(d, w);
            g.bump_node(s, w);
        }
        if op.uses.is_empty() {
            // Constants and loads still carry importance for ordering.
            g.bump_node(d, w);
        }
    }

    // Repulsion: defs in the same ideal instruction (kernel row). Rows are
    // visited in sorted order (BTreeMap): a register pair can pick up
    // repulsion from several rows, and f64 accumulation order would
    // otherwise leak HashMap iteration order into the edge weights — and
    // from there into content hashes of any serialized partition.
    if cfg.repulse_factor > 0.0 {
        let mut by_row: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
        for op in &body.ops {
            if op.def.is_some() {
                by_row
                    .entry(ideal.row(op.id))
                    .or_default()
                    .push(op.id.index());
            }
        }
        for ops in by_row.values() {
            for (i, &a) in ops.iter().enumerate() {
                for &b in &ops[i + 1..] {
                    let (da, db) = (body.ops[a].def.unwrap(), body.ops[b].def.unwrap());
                    if da == db {
                        continue;
                    }
                    let w = cfg.repulse_factor * imp(a).min(imp(b));
                    g.bump_edge(da, db, -w);
                }
            }
        }
    }

    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ddg::{build_ddg, compute_slack};
    use vliw_ir::{LoopBuilder, RegClass};
    use vliw_machine::MachineDesc;
    use vliw_sched::{schedule_loop, ImsConfig, SchedProblem};

    fn ideal_of(l: &Loop, m: &MachineDesc) -> (Schedule, SlackInfo) {
        let g = build_ddg(l, &m.latencies);
        let p = SchedProblem::ideal(l, m);
        let s = schedule_loop(&p, &g, &ImsConfig::default()).unwrap();
        let slack = compute_slack(&g, |op| m.latencies.of(l.op(op).opcode) as i64);
        (s, slack)
    }

    #[test]
    fn def_use_pairs_attract() {
        let mut b = LoopBuilder::new("a");
        let x = b.array("x", RegClass::Float, 64);
        let a = b.live_in_float("a");
        let v = b.load(x, 0, 1);
        let m_ = b.fmul(a, v);
        b.store(x, 0, 1, m_);
        let l = b.finish(64);
        let m = MachineDesc::monolithic(4);
        let (s, slack) = ideal_of(&l, &m);
        let g = build_rcg(&l, &s, &slack, &PartitionConfig::default());
        assert!(g.edge_weight(m_, a) > 0.0);
        assert!(g.edge_weight(m_, v) > 0.0);
        assert_eq!(g.edge_weight(a, v), 0.0);
        assert!(g.node_weight(m_) > 0.0);
    }

    #[test]
    fn edge_weights_are_symmetric() {
        let mut b = LoopBuilder::new("s");
        let p = b.fconst_new(1.0);
        let q = b.fconst_new(2.0);
        let r = b.fadd(p, q);
        let _ = r;
        let l = b.finish(4);
        let m = MachineDesc::monolithic(2);
        let (s, slack) = ideal_of(&l, &m);
        let g = build_rcg(&l, &s, &slack, &PartitionConfig::default());
        assert_eq!(g.edge_weight(r, p), g.edge_weight(p, r));
    }

    #[test]
    fn parallel_defs_repel() {
        // Two independent chains of identical shape: their defs share kernel
        // rows under an ideal 4-wide schedule.
        let mut b = LoopBuilder::new("r");
        let x = b.array("x", RegClass::Float, 64);
        let y = b.array("y", RegClass::Float, 64);
        let v1 = b.load(x, 0, 1);
        let v2 = b.load(y, 0, 1);
        let c = b.fconst_new(3.0);
        let m1 = b.fmul(v1, c);
        let m2 = b.fmul(v2, c);
        b.store(x, 0, 1, m1);
        b.store(y, 0, 1, m2);
        let l = b.finish(64);
        let m = MachineDesc::monolithic(8);
        let (s, slack) = ideal_of(&l, &m);
        let g = build_rcg(&l, &s, &slack, &PartitionConfig::default());
        // Some pair of independent defs landed in the same row and repels.
        let has_negative = (0..l.n_vregs() as u32)
            .flat_map(|a| g.neighbours(VReg(a)).iter().map(|&(_, w)| w))
            .any(|w| w < 0.0);
        assert!(has_negative, "expected at least one repulsion edge");
        // Repulsion must never appear between def and its own use.
        assert!(g.edge_weight(m1, v1) > 0.0);
    }

    #[test]
    fn components_split_independent_chains() {
        let mut b = LoopBuilder::new("c");
        let x = b.array("x", RegClass::Float, 64);
        let y = b.array("y", RegClass::Float, 64);
        let v1 = b.load(x, 0, 1);
        let m1 = b.fmul(v1, v1);
        b.store(x, 0, 1, m1);
        let v2 = b.load(y, 0, 1);
        let m2 = b.fadd(v2, v2);
        b.store(y, 0, 1, m2);
        let l = b.finish(64);
        let m = MachineDesc::monolithic(8);
        let (s, slack) = ideal_of(&l, &m);
        let g = build_rcg(&l, &s, &slack, &PartitionConfig::no_repulsion());
        let comps = g.positive_components();
        // {v1,m1} and {v2,m2} are separate positive components.
        let find = |v: VReg| comps.iter().position(|c| c.contains(&v)).unwrap();
        assert_eq!(find(v1), find(m1));
        assert_eq!(find(v2), find(m2));
        assert_ne!(find(v1), find(v2));
    }

    #[test]
    fn duplicate_uses_counted_once() {
        let mut b = LoopBuilder::new("d");
        let v = b.fconst_new(2.0);
        let sq = b.fmul(v, v); // v used twice
        let _ = sq;
        let l = b.finish(4);
        let m = MachineDesc::monolithic(2);
        let (s, slack) = ideal_of(&l, &m);
        // Repulsion disabled: with II=1 both defs share the only kernel row,
        // which would otherwise subtract from the sq—v edge.
        let g = build_rcg(&l, &s, &slack, &PartitionConfig::no_repulsion());
        // `sq` appears only in the fmul, so its node weight is exactly one
        // importance bump — and the duplicate use of `v` must have produced
        // exactly one edge bump of the same magnitude, not two.
        assert!((g.node_weight(sq) - g.edge_weight(sq, v)).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_nodes_and_edges() {
        let mut a = RcgGraph::new(3);
        a.bump_node(VReg(0), 1.0);
        a.bump_edge(VReg(0), VReg(1), 2.0);
        let mut b = RcgGraph::new(3);
        b.bump_node(VReg(0), 3.0);
        b.bump_edge(VReg(0), VReg(1), -0.5);
        b.bump_edge(VReg(1), VReg(2), 4.0);
        a.merge(&b);
        assert_eq!(a.node_weight(VReg(0)), 4.0);
        assert_eq!(a.edge_weight(VReg(0), VReg(1)), 1.5);
        assert_eq!(a.edge_weight(VReg(1), VReg(0)), 1.5);
        assert_eq!(a.edge_weight(VReg(1), VReg(2)), 4.0);
    }

    #[test]
    fn nodes_by_weight_is_sorted_desc() {
        let mut g = RcgGraph::new(3);
        g.bump_node(VReg(0), 1.0);
        g.bump_node(VReg(1), 5.0);
        g.bump_node(VReg(2), 3.0);
        assert_eq!(g.nodes_by_weight(), vec![VReg(1), VReg(2), VReg(0)]);
    }
}
