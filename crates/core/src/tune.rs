//! Off-line stochastic tuning of the heuristic weights — the paper's §7:
//! "we will investigate fine-tuning our greedy heuristic by using off-line
//! stochastic optimization techniques … genetic algorithms, simulated
//! annealing, or tabu search" (and their earlier instruction-scheduling
//! study \[5\]).
//!
//! This module implements a seeded random-restart hill-climb over the
//! [`PartitionConfig`] weight space, scoring each candidate by the mean
//! normalised degradation it achieves over a training set of loops. It is
//! deliberately simple: the point of the experiment is the *shape* —
//! whether tuned weights beat the paper's ad hoc ones — not the optimiser.

use crate::config::PartitionConfig;
use crate::context::LoopContext;
use crate::copyins::insert_copies;
use crate::greedy::assign_banks_caps;
use crate::rcg::build_rcg;
use vliw_ddg::build_ddg;
use vliw_ir::Loop;
use vliw_machine::MachineDesc;
use vliw_sched::{schedule_loop, ImsConfig, SchedProblem};

/// A deterministic xorshift64* generator, so tuning needs no extra
/// dependencies and reproduces exactly.
#[derive(Debug, Clone)]
pub struct XorShift(u64);

impl XorShift {
    /// Seeded generator (seed must be non-zero; 0 is remapped).
    pub fn new(seed: u64) -> Self {
        XorShift(if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        })
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + u * (hi - lo)
    }
}

/// Outcome of a tuning run.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// Best configuration found.
    pub config: PartitionConfig,
    /// Mean normalised degradation of the best configuration (100 = ideal).
    pub score: f64,
    /// Score of the default (paper-reconstruction) configuration, for
    /// comparison.
    pub baseline_score: f64,
    /// Candidates evaluated.
    pub evaluated: usize,
}

/// Mean normalised degradation of `cfg` on `loops` (lower is better;
/// 100 = every loop at its ideal II).
///
/// Convenience wrapper that rebuilds each loop's front-end analysis; a
/// tuning run scoring many configurations should build the contexts once
/// and call [`score_config_ctx`].
pub fn score_config(loops: &[Loop], machine: &MachineDesc, cfg: &PartitionConfig) -> f64 {
    let ctxs: Vec<LoopContext> = loops.iter().map(|l| LoopContext::new(l, machine)).collect();
    score_config_ctx(loops, &ctxs, machine, cfg)
}

/// [`score_config`] against precomputed per-loop contexts. The DDG, slack,
/// and ideal schedule are configuration-independent, so the tuner shares one
/// [`LoopContext`] per training loop across its entire weight grid; only the
/// RCG, the partition, and the clustered reschedule vary per candidate.
pub fn score_config_ctx(
    loops: &[Loop],
    ctxs: &[LoopContext],
    machine: &MachineDesc,
    cfg: &PartitionConfig,
) -> f64 {
    assert_eq!(loops.len(), ctxs.len());
    let caps: Vec<usize> = machine.clusters.iter().map(|c| c.n_fus).collect();
    let mut total = 0.0;
    for (body, ctx) in loops.iter().zip(ctxs) {
        let rcg = build_rcg(body, &ctx.ideal, &ctx.slack, cfg);
        let part = assign_banks_caps(&rcg, &caps, cfg);
        let clustered = insert_copies(body, &part);
        let cddg = build_ddg(&clustered.body, &machine.latencies);
        let problem = SchedProblem::clustered(&clustered.body, machine, &clustered.cluster_of);
        let sched = schedule_loop(&problem, &cddg, &ImsConfig::default()).expect("clustered");
        total += 100.0 * sched.ii as f64 / ctx.ideal.ii as f64;
    }
    total / loops.len().max(1) as f64
}

/// Random-restart hill-climb: `restarts` random starting points, each
/// refined by `steps` Gaussian-ish perturbations; keeps the best overall.
pub fn tune_weights(
    loops: &[Loop],
    machine: &MachineDesc,
    restarts: usize,
    steps: usize,
    seed: u64,
) -> TuneResult {
    let mut rng = XorShift::new(seed);
    // One front-end analysis per training loop for the whole run; every
    // candidate configuration below reuses them.
    let ctxs: Vec<LoopContext> = loops.iter().map(|l| LoopContext::new(l, machine)).collect();
    let baseline = PartitionConfig::default();
    let baseline_score = score_config_ctx(loops, &ctxs, machine, &baseline);
    let mut best = (baseline, baseline_score);
    let mut evaluated = 1usize;

    let sample = |rng: &mut XorShift| PartitionConfig {
        crit_weight: rng.uniform(1.0, 8.0),
        repulse_factor: rng.uniform(0.0, 1.5),
        balance_factor: rng.uniform(0.0, 1.5),
        depth_base: 2.0,
    };
    let perturb = |rng: &mut XorShift, c: &PartitionConfig| PartitionConfig {
        crit_weight: (c.crit_weight + rng.uniform(-1.0, 1.0)).clamp(1.0, 8.0),
        repulse_factor: (c.repulse_factor + rng.uniform(-0.25, 0.25)).clamp(0.0, 1.5),
        balance_factor: (c.balance_factor + rng.uniform(-0.25, 0.25)).clamp(0.0, 1.5),
        depth_base: 2.0,
    };

    for r in 0..restarts {
        let mut cur = if r == 0 { best.0 } else { sample(&mut rng) };
        let mut cur_score = if r == 0 {
            best.1
        } else {
            evaluated += 1;
            score_config_ctx(loops, &ctxs, machine, &cur)
        };
        for _ in 0..steps {
            let cand = perturb(&mut rng, &cur);
            let s = score_config_ctx(loops, &ctxs, machine, &cand);
            evaluated += 1;
            if s < cur_score {
                cur = cand;
                cur_score = s;
            }
        }
        if cur_score < best.1 {
            best = (cur, cur_score);
        }
    }

    TuneResult {
        config: best.0,
        score: best.1,
        baseline_score,
        evaluated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ir::{LoopBuilder, RegClass};

    fn training_set() -> Vec<Loop> {
        let mut out = Vec::new();
        for u in [2usize, 4] {
            let mut b = LoopBuilder::new(format!("t{u}"));
            let x = b.array("x", RegClass::Float, 64 * u);
            let y = b.array("y", RegClass::Float, 64 * u);
            let a = b.live_in_float("a");
            for j in 0..u as i64 {
                let xv = b.load(x, j, u as i64);
                let yv = b.load(y, j, u as i64);
                let p = b.fmul(a, xv);
                let s = b.fadd(yv, p);
                b.store(y, j, u as i64, s);
            }
            out.push(b.finish(32));
        }
        out
    }

    #[test]
    fn xorshift_is_deterministic_and_in_range() {
        let mut a = XorShift::new(42);
        let mut b = XorShift::new(42);
        for _ in 0..100 {
            let (x, y) = (a.uniform(2.0, 3.0), b.uniform(2.0, 3.0));
            assert_eq!(x, y);
            assert!((2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn tuning_never_loses_to_baseline() {
        let loops = training_set();
        let m = MachineDesc::embedded(2, 2);
        let r = tune_weights(&loops, &m, 2, 3, 7);
        assert!(r.score <= r.baseline_score);
        assert!(r.evaluated >= 7);
        // And re-scoring the winner reproduces its score (determinism).
        let again = score_config(&loops, &m, &r.config);
        assert_eq!(again, r.score);
    }

    #[test]
    fn score_of_ideal_friendly_machine_is_100() {
        let loops = training_set();
        let m = MachineDesc::monolithic(4);
        let s = score_config(&loops, &m, &PartitionConfig::default());
        assert_eq!(s, 100.0);
    }
}
