//! The greedy bank-assignment algorithm (Fig. 4 of the paper).

use crate::config::PartitionConfig;
use crate::rcg::RcgGraph;
use vliw_ir::VReg;
use vliw_machine::ClusterId;

/// A complete assignment of virtual registers to register banks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Bank per register (index = register index).
    pub bank_of: Vec<ClusterId>,
    /// Number of banks the assignment targets.
    pub n_banks: usize,
}

impl Partition {
    /// Bank of register `v`.
    #[inline]
    pub fn bank(&self, v: VReg) -> ClusterId {
        self.bank_of[v.index()]
    }

    /// Number of registers per bank.
    pub fn sizes(&self) -> Vec<usize> {
        let mut s = vec![0usize; self.n_banks];
        for b in &self.bank_of {
            s[b.index()] += 1;
        }
        s
    }

    /// A partition that puts everything in bank 0 (the monolithic case).
    pub fn trivial(n_vregs: usize) -> Self {
        Partition {
            bank_of: vec![ClusterId(0); n_vregs],
            n_banks: 1,
        }
    }
}

/// Assign every RCG node to one of `n_banks` banks, following Fig. 4:
///
/// ```text
/// foreach RCG node N, in decreasing order of weight(N):
///     foreach bank RB:
///         ThisBenefit = Σ weight of RCG edges to neighbours already in RB
///         ThisBenefit -= balance_factor · |registers already in RB|
///     Bank(N) = argmax, defaulting to bank 0
/// ```
///
/// The paper's pseudo-code literally initialises `BestBenefit = 0`, which
/// would pin a node to bank 0 even when bank 0 has strongly negative benefit
/// (e.g. a repelled neighbour already lives there). We read that as
/// pseudo-code shorthand and implement a true argmax: banks are examined in
/// order and a strictly larger benefit switches, so bank 0 wins only ties —
/// preserving the paper's deterministic bank-0 bias without its pathology.
pub fn assign_banks(g: &RcgGraph, n_banks: usize, cfg: &PartitionConfig) -> Partition {
    assign_banks_caps(g, &vec![1usize; n_banks], cfg)
}

/// Capacity-aware variant of [`assign_banks`]: `caps[rb]` is the number of
/// functional units behind bank `rb`. The balance penalty for placing a
/// node in `rb` is `balance_factor · mean_edge · assigned(rb) / caps[rb]` —
/// a narrow cluster saturates with fewer operations, so crowding it is
/// penalised proportionally harder. With uniform unit capacities this
/// degenerates to the plain penalty.
pub fn assign_banks_caps(g: &RcgGraph, caps: &[usize], cfg: &PartitionConfig) -> Partition {
    assign_banks_pinned(g, caps, &vec![None; g.n_nodes()], cfg)
}

/// Pre-coloured variant (§4.1: machine idiosyncrasies such as "A, B and C
/// must reside in banks X, Y and Z" are handled "by pre-coloring both the
/// register bank choice and the register number choice"): `pins[v]` fixes
/// register `v`'s bank before the greedy runs. Pinned nodes are seeded
/// first, so free neighbours feel their attraction/repulsion.
pub fn assign_banks_pinned(
    g: &RcgGraph,
    caps: &[usize],
    pins: &[Option<ClusterId>],
    cfg: &PartitionConfig,
) -> Partition {
    let n_banks = caps.len();
    assert!(n_banks >= 1);
    let n = g.n_nodes();
    assert_eq!(pins.len(), n);
    let mut bank_of: Vec<Option<ClusterId>> = vec![None; n];
    let mut count = vec![0usize; n_banks];
    for (i, pin) in pins.iter().enumerate() {
        if let Some(b) = pin {
            assert!(b.index() < n_banks, "pin out of range");
            bank_of[i] = Some(*b);
            count[b.index()] += 1;
        }
    }
    // The balance penalty competes against edge-weight benefits, whose scale
    // varies with loop density; normalising by the graph's mean positive
    // edge weight makes `balance_factor` dimensionless.
    let balance_scale = cfg.balance_factor * g.mean_positive_edge_weight().max(1.0);

    for v in g.nodes_by_weight() {
        if bank_of[v.index()].is_some() {
            continue; // pinned
        }
        let mut best_bank = ClusterId(0);
        let mut best_benefit = f64::NEG_INFINITY;
        for rb in 0..n_banks {
            let mut benefit = 0.0;
            for &(nb, w) in g.neighbours(v) {
                if bank_of[nb.index()] == Some(ClusterId(rb as u32)) {
                    benefit += w;
                }
            }
            benefit -= balance_scale * count[rb] as f64 / caps[rb].max(1) as f64;
            if benefit > best_benefit {
                best_benefit = benefit;
                best_bank = ClusterId(rb as u32);
            }
        }
        bank_of[v.index()] = Some(best_bank);
        count[best_bank.index()] += 1;
    }

    Partition {
        bank_of: bank_of.into_iter().map(Option::unwrap).collect(),
        n_banks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attracted_pair_shares_a_bank() {
        let mut g = RcgGraph::new(2);
        g.bump_node(VReg(0), 10.0);
        g.bump_node(VReg(1), 5.0);
        g.bump_edge(VReg(0), VReg(1), 8.0);
        let p = assign_banks(&g, 4, &PartitionConfig::default());
        assert_eq!(p.bank(VReg(0)), p.bank(VReg(1)));
    }

    #[test]
    fn repelled_pair_splits() {
        let mut g = RcgGraph::new(2);
        g.bump_node(VReg(0), 10.0);
        g.bump_node(VReg(1), 5.0);
        g.bump_edge(VReg(0), VReg(1), -8.0);
        let p = assign_banks(&g, 2, &PartitionConfig::default());
        assert_ne!(p.bank(VReg(0)), p.bank(VReg(1)));
    }

    #[test]
    fn balance_spreads_isolated_nodes() {
        // 8 isolated equal-weight nodes over 4 banks must not all pile into
        // bank 0 once the balance penalty kicks in.
        let mut g = RcgGraph::new(8);
        for i in 0..8 {
            g.bump_node(VReg(i), 1.0);
        }
        let p = assign_banks(&g, 4, &PartitionConfig::default());
        let sizes = p.sizes();
        assert!(sizes.iter().all(|&s| s >= 1), "sizes = {sizes:?}");
    }

    #[test]
    fn no_balance_piles_into_bank_zero() {
        let mut g = RcgGraph::new(6);
        for i in 0..6 {
            g.bump_node(VReg(i), 1.0);
        }
        let p = assign_banks(&g, 3, &PartitionConfig::no_balance());
        assert_eq!(p.sizes(), vec![6, 0, 0]);
    }

    #[test]
    fn single_bank_degenerates_to_trivial() {
        let mut g = RcgGraph::new(4);
        g.bump_edge(VReg(0), VReg(1), -5.0);
        let p = assign_banks(&g, 1, &PartitionConfig::default());
        assert_eq!(p, Partition::trivial(4));
    }

    #[test]
    fn attraction_beats_balance_when_strong() {
        // A clique of 4 strongly attracted nodes stays together even though
        // balance would prefer spreading.
        let mut g = RcgGraph::new(4);
        for a in 0..4u32 {
            g.bump_node(VReg(a), 10.0 - a as f64);
            for b in (a + 1)..4u32 {
                g.bump_edge(VReg(a), VReg(b), 100.0);
            }
        }
        let p = assign_banks(&g, 4, &PartitionConfig::default());
        let b0 = p.bank(VReg(0));
        assert!((0..4u32).all(|i| p.bank(VReg(i)) == b0));
    }

    #[test]
    fn pins_are_respected_and_attract() {
        let mut g = RcgGraph::new(3);
        g.bump_node(VReg(0), 1.0);
        g.bump_node(VReg(1), 5.0);
        g.bump_edge(VReg(1), VReg(2), 10.0);
        // Pin v2 to bank 3; v1 should follow its strong attraction there.
        let pins = vec![None, None, Some(ClusterId(3))];
        let p = assign_banks_pinned(&g, &[1; 4], &pins, &PartitionConfig::default());
        assert_eq!(p.bank(VReg(2)), ClusterId(3));
        assert_eq!(p.bank(VReg(1)), ClusterId(3));
    }

    #[test]
    fn pinned_repulsion_pushes_away() {
        let mut g = RcgGraph::new(2);
        g.bump_node(VReg(0), 1.0);
        g.bump_edge(VReg(0), VReg(1), -10.0);
        let pins = vec![None, Some(ClusterId(0))];
        let p = assign_banks_pinned(&g, &[1; 2], &pins, &PartitionConfig::default());
        assert_ne!(p.bank(VReg(0)), ClusterId(0));
    }

    #[test]
    #[should_panic]
    fn out_of_range_pin_panics() {
        let g = RcgGraph::new(1);
        let _ = assign_banks_pinned(
            &g,
            &[1; 2],
            &[Some(ClusterId(5))],
            &PartitionConfig::default(),
        );
    }

    #[test]
    fn deterministic_given_ties() {
        let g = RcgGraph::new(5);
        let p1 = assign_banks(&g, 2, &PartitionConfig::default());
        let p2 = assign_banks(&g, 2, &PartitionConfig::default());
        assert_eq!(p1, p2);
    }
}
