//! Tunable constants of the RCG weighting and the greedy assignment.
//!
//! §5 of the paper describes the heuristic ingredients — nesting depth, DDD
//! density, Flexibility (slack+1), critical-path emphasis, a bank-balance
//! penalty — but the printed formulas are unreadable in the surviving copy
//! and the paper itself calls the weights "determined in an ad hoc manner".
//! Every constant of our reconstruction therefore lives here, and the
//! ablation benches sweep them.

/// Weights for RCG construction and greedy bank assignment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionConfig {
    /// Multiplier applied to an operation's importance when it lies on a
    /// critical path (Flexibility == 1).
    pub crit_weight: f64,
    /// Scale of repulsion edges between registers defined in the same ideal
    /// instruction, as a fraction of the smaller operation importance.
    pub repulse_factor: f64,
    /// Bank-balance penalty: `balance_factor · assigned(bank)` is subtracted
    /// from the benefit of placing a node in `bank` (Fig. 4's
    /// `ThisBenefit -= …` step, "to attempt to spread the symbolic registers
    /// somewhat evenly across the available partitions").
    pub balance_factor: f64,
    /// Exponent base for nesting depth: importance scales by
    /// `depth_base^(depth−1)`. The corpus is all depth-1 innermost loops, so
    /// this only matters for whole-function use.
    pub depth_base: f64,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            crit_weight: 4.0,
            repulse_factor: 0.5,
            balance_factor: 0.6,
            depth_base: 2.0,
        }
    }
}

impl PartitionConfig {
    /// A configuration with the balance term disabled — the "no spreading"
    /// ablation.
    pub fn no_balance() -> Self {
        PartitionConfig {
            balance_factor: 0.0,
            ..Default::default()
        }
    }

    /// A configuration with repulsion edges disabled — the "attraction only"
    /// ablation.
    pub fn no_repulsion() -> Self {
        PartitionConfig {
            repulse_factor: 0.0,
            ..Default::default()
        }
    }

    /// Canonical one-line text encoding, e.g.
    /// `crit=4.0 repulse=0.5 balance=0.6 depth_base=2.0`.
    ///
    /// Floats are rendered with `{:?}` (shortest round-trip form), so
    /// [`PartitionConfig::parse_canonical`] recovers the exact bits — the
    /// property the compile-service cache key needs.
    pub fn canonical_text(&self) -> String {
        format!(
            "crit={:?} repulse={:?} balance={:?} depth_base={:?}",
            self.crit_weight, self.repulse_factor, self.balance_factor, self.depth_base
        )
    }

    /// Parse the form produced by [`PartitionConfig::canonical_text`].
    /// Unknown keys are rejected; missing keys keep their defaults.
    pub fn parse_canonical(text: &str) -> Result<Self, String> {
        let mut cfg = PartitionConfig::default();
        for kv in text.split_whitespace() {
            let (k, v) = kv
                .split_once('=')
                .ok_or_else(|| format!("config item `{kv}` is not key=value"))?;
            let v: f64 = v
                .parse()
                .map_err(|_| format!("bad float in config item `{kv}`"))?;
            match k {
                "crit" => cfg.crit_weight = v,
                "repulse" => cfg.repulse_factor = v,
                "balance" => cfg.balance_factor = v,
                "depth_base" => cfg.depth_base = v,
                other => return Err(format!("unknown config key `{other}`")),
            }
        }
        Ok(cfg)
    }

    /// Importance of an operation given its flexibility (slack+1), the DDD
    /// density of its block, and the block's nesting depth.
    pub fn importance(&self, flexibility: i64, density: f64, depth: u32) -> f64 {
        debug_assert!(flexibility >= 1);
        let crit = if flexibility == 1 {
            self.crit_weight
        } else {
            1.0
        };
        let depth_scale = self.depth_base.powi(depth.saturating_sub(1) as i32);
        crit * density * depth_scale / flexibility as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn critical_ops_weigh_more() {
        let c = PartitionConfig::default();
        let crit = c.importance(1, 2.0, 1);
        let slack1 = c.importance(2, 2.0, 1);
        assert!(crit > slack1);
        // Critical gets the 4× bonus AND no flexibility division.
        assert!((crit / slack1 - 8.0).abs() < 1e-12);
    }

    #[test]
    fn deeper_nesting_weighs_more() {
        let c = PartitionConfig::default();
        assert!(c.importance(3, 1.0, 2) > c.importance(3, 1.0, 1));
        assert!((c.importance(3, 1.0, 2) / c.importance(3, 1.0, 1) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn density_scales_linearly() {
        let c = PartitionConfig::default();
        assert!((c.importance(2, 4.0, 1) / c.importance(2, 2.0, 1) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn canonical_text_round_trips() {
        for cfg in [
            PartitionConfig::default(),
            PartitionConfig::no_balance(),
            PartitionConfig {
                crit_weight: 3.25,
                repulse_factor: 0.1,
                balance_factor: 1e-3,
                depth_base: 1.5,
            },
        ] {
            let text = cfg.canonical_text();
            let back = PartitionConfig::parse_canonical(&text).unwrap();
            assert_eq!(back, cfg, "{text}");
            assert_eq!(back.canonical_text(), text);
        }
        assert!(PartitionConfig::parse_canonical("crit=1 bogus=2").is_err());
        assert!(PartitionConfig::parse_canonical("crit").is_err());
    }

    #[test]
    fn ablation_configs() {
        assert_eq!(PartitionConfig::no_balance().balance_factor, 0.0);
        assert_eq!(PartitionConfig::no_repulsion().repulse_factor, 0.0);
        assert_ne!(PartitionConfig::no_balance().repulse_factor, 0.0);
    }
}
