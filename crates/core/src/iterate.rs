//! Iterated partitioning — the paper's stated future work (§7), in the
//! spirit of Nystrom and Eichenberger's iterative refinement (§6.3).
//!
//! The greedy pass is used as the initial phase (exactly how the paper
//! positions it: "our greedy algorithm can be thought of as an initial phase
//! before iteration is performed"). Each round then proposes register moves
//! that would eliminate observed copies, re-inserts copies, re-schedules,
//! and keeps the move only if the achieved II improves.

use crate::config::PartitionConfig;
use crate::context::LoopContext;
use crate::copyins::insert_copies;
use crate::greedy::Partition;
use crate::rcg::build_rcg;
use vliw_ddg::build_ddg;
use vliw_ir::{Loop, VReg};
use vliw_machine::MachineDesc;
use vliw_sched::{schedule_loop, ImsConfig, SchedProblem, Schedule};

/// Result of evaluating one candidate partition end to end.
#[derive(Debug, Clone)]
pub struct Evaluated {
    /// The partition evaluated.
    pub partition: Partition,
    /// Achieved initiation interval after copy insertion and rescheduling.
    pub ii: u32,
    /// Kernel copies the partition required.
    pub n_kernel_copies: usize,
}

/// Insert copies under `part`, rebuild the DDG, re-schedule on `machine`,
/// and report the achieved II.
pub fn evaluate_partition(body: &Loop, machine: &MachineDesc, part: &Partition) -> Evaluated {
    let clustered = insert_copies(body, part);
    let ddg = build_ddg(&clustered.body, &machine.latencies);
    let problem = SchedProblem::clustered(&clustered.body, machine, &clustered.cluster_of);
    let sched: Schedule =
        schedule_loop(&problem, &ddg, &ImsConfig::default()).expect("fallback guarantees an II");
    Evaluated {
        partition: part.clone(),
        ii: sched.ii,
        n_kernel_copies: clustered.n_kernel_copies,
    }
}

/// Run the greedy partitioner, then up to `rounds` improvement rounds.
///
/// Each round ranks registers by RCG node weight among those whose uses span
/// clusters, proposes moving each of the top `beam` candidates to its
/// majority-use cluster, and accepts the best single move that lowers the
/// achieved II (ties broken by fewer kernel copies). Stops early when no
/// move helps.
pub fn iterated_partition(
    body: &Loop,
    machine: &MachineDesc,
    cfg: &PartitionConfig,
    rounds: usize,
    beam: usize,
) -> Evaluated {
    let ctx = LoopContext::new(body, machine);
    iterated_partition_ctx(body, machine, cfg, rounds, beam, &ctx)
}

/// [`iterated_partition`] with the loop's shared front-end analysis
/// (DDG, slack, ideal schedule) already computed — the pipeline driver and
/// the weight tuner pass the context they built anyway, so the initial
/// greedy phase stops re-scheduling the ideal machine from scratch.
pub fn iterated_partition_ctx(
    body: &Loop,
    machine: &MachineDesc,
    cfg: &PartitionConfig,
    rounds: usize,
    beam: usize,
    ctx: &LoopContext,
) -> Evaluated {
    // Initial phase: the paper's greedy method on the ideal schedule.
    let rcg = build_rcg(body, &ctx.ideal, &ctx.slack, cfg);
    let caps: Vec<usize> = machine.clusters.iter().map(|c| c.n_fus).collect();
    let mut best = evaluate_partition(
        body,
        machine,
        &crate::greedy::assign_banks_caps(&rcg, &caps, cfg),
    );

    for _ in 0..rounds {
        // Candidate registers: used (or defined) on a cluster other than
        // their own, heaviest first.
        let mut candidates: Vec<(f64, VReg, vliw_machine::ClusterId)> = Vec::new();
        for v in (0..body.n_vregs() as u32).map(VReg) {
            let mut votes = vec![0usize; machine.n_clusters()];
            for op in &body.ops {
                if op.uses_reg(v) {
                    let c = crate::copyins::op_cluster(body, &best.partition, op);
                    votes[c.index()] += 1;
                }
            }
            let (maj, &n) = match votes.iter().enumerate().max_by_key(|&(_, &n)| n) {
                Some(x) => x,
                None => continue,
            };
            let maj = vliw_machine::ClusterId(maj as u32);
            if n > 0 && maj != best.partition.bank(v) {
                candidates.push((rcg.node_weight(v), v, maj));
            }
        }
        candidates.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
        candidates.truncate(beam);

        let mut round_best: Option<Evaluated> = None;
        for &(_, v, target) in &candidates {
            let mut cand = best.partition.clone();
            cand.bank_of[v.index()] = target;
            let e = evaluate_partition(body, machine, &cand);
            let better = match &round_best {
                None => true,
                Some(rb) => (e.ii, e.n_kernel_copies) < (rb.ii, rb.n_kernel_copies),
            };
            if better {
                round_best = Some(e);
            }
        }
        match round_best {
            Some(rb) if (rb.ii, rb.n_kernel_copies) < (best.ii, best.n_kernel_copies) => {
                best = rb;
            }
            _ => break,
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ir::{LoopBuilder, RegClass};

    fn sample() -> Loop {
        let mut b = LoopBuilder::new("it");
        let x = b.array("x", RegClass::Float, 256);
        let y = b.array("y", RegClass::Float, 256);
        let a = b.live_in_float("a");
        for u in 0..4i64 {
            let xv = b.load(x, u, 4);
            let yv = b.load(y, u, 4);
            let p = b.fmul(a, xv);
            let s = b.fadd(yv, p);
            b.store(y, u, 4, s);
        }
        b.finish(64)
    }

    #[test]
    fn evaluate_reports_consistent_ii() {
        let l = sample();
        let m = MachineDesc::embedded(4, 4);
        let part = Partition::trivial(l.n_vregs());
        let mut part = part;
        part.n_banks = 4;
        let e = evaluate_partition(&l, &m, &part);
        // Everything on cluster 0 (4 FUs): 20 ops ⇒ II ≥ 5.
        assert!(e.ii >= 5);
        assert_eq!(e.n_kernel_copies, 0);
    }

    #[test]
    fn iteration_never_worsens_greedy() {
        let l = sample();
        let m = MachineDesc::embedded(4, 4);
        let cfg = PartitionConfig::default();
        let greedy = {
            let ctx = LoopContext::new(&l, &m);
            let rcg = build_rcg(&l, &ctx.ideal, &ctx.slack, &cfg);
            evaluate_partition(&l, &m, &crate::greedy::assign_banks(&rcg, 4, &cfg))
        };
        let iterated = iterated_partition(&l, &m, &cfg, 4, 8);
        assert!(iterated.ii <= greedy.ii);
    }
}
