//! Baseline partitioners the greedy RCG method is compared against.
//!
//! * [`round_robin_partition`] — registers dealt to banks cyclically; the
//!   "no structure" floor.
//! * [`component_partition`] — connected components of the positive RCG
//!   packed onto banks (§4.1's observation that unconnected values are free
//!   to separate, without the greedy edge-benefit refinement).
//! * [`bug_partition`] — a bottom-up-greedy **operation-DAG** partitioner in
//!   the spirit of Ellis's BUG (§3): operations are assigned to clusters in
//!   critical-path order, balancing copy cost against load; registers then
//!   inherit the cluster of their defining operation. This is the class of
//!   algorithm the paper positions the RCG method against.

use crate::greedy::Partition;
use crate::rcg::RcgGraph;
use vliw_ddg::SlackInfo;
use vliw_ir::{Loop, VReg};
use vliw_machine::{ClusterId, MachineDesc};

/// Deal registers to banks cyclically: `v → v mod n_banks`.
pub fn round_robin_partition(n_vregs: usize, n_banks: usize) -> Partition {
    Partition {
        bank_of: (0..n_vregs)
            .map(|i| ClusterId((i % n_banks) as u32))
            .collect(),
        n_banks,
    }
}

/// Pack positive-edge connected components onto banks, heaviest component
/// first, each onto the currently least-loaded bank.
pub fn component_partition(g: &RcgGraph, n_banks: usize) -> Partition {
    let mut comps = g.positive_components();
    comps.sort_by(|a, b| {
        let wa: f64 = a.iter().map(|&v| g.node_weight(v)).sum();
        let wb: f64 = b.iter().map(|&v| g.node_weight(v)).sum();
        wb.partial_cmp(&wa).unwrap().then(a.len().cmp(&b.len()))
    });
    let mut bank_of = vec![ClusterId(0); g.n_nodes()];
    let mut load = vec![0usize; n_banks];
    for comp in comps {
        let target = (0..n_banks).min_by_key(|&b| load[b]).unwrap();
        load[target] += comp.len();
        for v in comp {
            bank_of[v.index()] = ClusterId(target as u32);
        }
    }
    Partition { bank_of, n_banks }
}

/// Bottom-up-greedy operation-DAG partitioning (Ellis-style BUG).
///
/// Operations are visited most-critical-first (smallest latest-start).
/// Each is assigned the cluster minimising
/// `copy_cost · (remote operands) + load(cluster) / fus(cluster)`, where an
/// operand is remote if its defining operation (or its live-in placement)
/// sits on another cluster. Registers inherit the cluster of their defining
/// operation; pure live-ins take the cluster that uses them most.
pub fn bug_partition(body: &Loop, slack: &SlackInfo, machine: &MachineDesc) -> Partition {
    let n_banks = machine.n_clusters();
    let n_ops = body.n_ops();
    let copy_cost = machine.latencies.copy_int.max(machine.latencies.copy_float) as f64;

    // Visit order: critical first.
    let mut order: Vec<usize> = (0..n_ops).collect();
    order.sort_by_key(|&i| (slack.lstart[i], i));

    // Cluster per op, assigned incrementally.
    let mut op_cluster: Vec<Option<ClusterId>> = vec![None; n_ops];
    let mut load = vec![0f64; n_banks];
    // Where each register's value lives once known (def op assigned).
    let mut reg_home: Vec<Option<ClusterId>> = vec![None; body.n_vregs()];

    for &i in &order {
        let op = &body.ops[i];
        let mut best = (f64::INFINITY, ClusterId(0));
        for (b, bank_load) in load.iter().enumerate() {
            let c = ClusterId(b as u32);
            let remote = op
                .uses
                .iter()
                .filter(|&&u| matches!(reg_home[u.index()], Some(h) if h != c))
                .count() as f64;
            let fus = machine.fus_in(c).max(1) as f64;
            let cost = copy_cost * remote + bank_load / fus;
            if cost < best.0 {
                best = (cost, c);
            }
        }
        let c = best.1;
        op_cluster[i] = Some(c);
        load[c.index()] += 1.0;
        if let Some(d) = op.def {
            reg_home[d.index()] = Some(c);
        }
        // A live-in first touched here gets a provisional home, so later
        // users prefer co-location.
        for &u in &op.uses {
            reg_home[u.index()].get_or_insert(c);
        }
    }

    // Registers: defining op's cluster; live-ins: most frequent user cluster.
    let mut bank_of = vec![ClusterId(0); body.n_vregs()];
    for v in (0..body.n_vregs() as u32).map(VReg) {
        let defs = body.defs_of(v);
        if let Some(&d) = defs.last() {
            bank_of[v.index()] = op_cluster[d.index()].unwrap();
        } else {
            let mut votes = vec![0usize; n_banks];
            for u in body.uses_of(v) {
                votes[op_cluster[u.index()].unwrap().index()] += 1;
            }
            let best = votes
                .iter()
                .enumerate()
                .max_by_key(|&(i, &v)| (v, usize::MAX - i))
                .map(|(i, _)| i)
                .unwrap_or(0);
            bank_of[v.index()] = ClusterId(best as u32);
        }
    }
    Partition { bank_of, n_banks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ddg::{build_ddg, compute_slack};
    use vliw_ir::{LoopBuilder, RegClass};

    fn two_chain_loop() -> Loop {
        // Two independent chains — a partitioner with any structure awareness
        // should separate them on a 2-cluster machine.
        let mut b = LoopBuilder::new("chains");
        let x = b.array("x", RegClass::Float, 64);
        let y = b.array("y", RegClass::Float, 64);
        let v1 = b.load(x, 0, 1);
        let m1 = b.fmul(v1, v1);
        b.store(x, 0, 1, m1);
        let v2 = b.load(y, 0, 1);
        let m2 = b.fadd(v2, v2);
        b.store(y, 0, 1, m2);
        b.finish(64)
    }

    #[test]
    fn round_robin_spreads_evenly() {
        let p = round_robin_partition(10, 4);
        assert_eq!(p.sizes(), vec![3, 3, 2, 2]);
        assert_eq!(p.bank(VReg(5)), ClusterId(1));
    }

    #[test]
    fn bug_separates_independent_chains() {
        let l = two_chain_loop();
        let m = MachineDesc::embedded(2, 1);
        let g = build_ddg(&l, &m.latencies);
        let slack = compute_slack(&g, |op| m.latencies.of(l.op(op).opcode) as i64);
        let p = bug_partition(&l, &slack, &m);
        // Registers within a chain co-locate.
        assert_eq!(p.bank(VReg(0)), p.bank(VReg(1))); // v1, m1
        assert_eq!(p.bank(VReg(2)), p.bank(VReg(3))); // v2, m2
                                                      // And the two chains land on different clusters (load balancing).
        assert_ne!(p.bank(VReg(0)), p.bank(VReg(2)));
    }

    #[test]
    fn bug_respects_cluster_count() {
        let l = two_chain_loop();
        let m = MachineDesc::embedded(4, 4);
        let g = build_ddg(&l, &m.latencies);
        let slack = compute_slack(&g, |op| m.latencies.of(l.op(op).opcode) as i64);
        let p = bug_partition(&l, &slack, &m);
        assert_eq!(p.n_banks, 4);
        assert!(p.bank_of.iter().all(|b| b.index() < 4));
    }

    #[test]
    fn component_partition_balances_components() {
        let mut g = RcgGraph::new(6);
        // Components {0,1}, {2,3}, {4}, {5} with varying weights.
        g.bump_edge(VReg(0), VReg(1), 5.0);
        g.bump_edge(VReg(2), VReg(3), 3.0);
        for i in 0..6 {
            g.bump_node(VReg(i), 1.0);
        }
        let p = component_partition(&g, 2);
        assert_eq!(p.bank(VReg(0)), p.bank(VReg(1)));
        assert_eq!(p.bank(VReg(2)), p.bank(VReg(3)));
        // The two heavy components split across banks.
        assert_ne!(p.bank(VReg(0)), p.bank(VReg(2)));
    }
}
