//! # vliw-bench — shared helpers for the Criterion benchmark suite
//!
//! One bench target exists per table/figure of the paper (see
//! `benches/`): each prints the reproduced rows once (so `cargo bench`
//! output doubles as the reproduction record) and then measures the time to
//! regenerate them. `scheduler_micro` additionally tracks the hot kernels
//! (DDG construction, MinII, IMS, RCG build, greedy assignment, copy
//! insertion, colouring, simulation) on representative loops.

#![warn(missing_docs)]

use vliw_ir::Loop;

/// The full deterministic 211-loop corpus.
pub fn full_corpus() -> Vec<Loop> {
    vliw_loopgen::corpus()
}

/// A deterministic slice of the corpus for per-iteration measurement.
pub fn corpus_slice(n: usize) -> Vec<Loop> {
    let mut c = vliw_loopgen::corpus();
    c.truncate(n);
    c
}

/// A representative high-ILP loop (daxpy unrolled 8×, 40 ops).
pub fn rep_ilp_loop() -> Loop {
    vliw_loopgen::Family::Daxpy.build(0, 8, 64)
}

/// A representative recurrence-bound loop.
pub fn rep_recurrence_loop() -> Loop {
    vliw_loopgen::Family::Rec1.build(0, 4, 64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_are_deterministic() {
        assert_eq!(full_corpus().len(), 211);
        assert_eq!(corpus_slice(10).len(), 10);
        assert_eq!(rep_ilp_loop().n_ops(), 40);
        assert!(!rep_recurrence_loop().carried_regs().is_empty());
    }
}
