//! Scheduler perf baseline runner.
//!
//! Times the scheduler-core hot kernels in their old (dense / recompute-
//! everything) and new (sparse / shared-context) formulations, plus the
//! corpus pipeline stage by stage, and writes the results as JSON — the
//! checked-in `BENCH_scheduler.json` at the repo root. Rerun with
//!
//! ```text
//! cargo run --release -p vliw-bench --bin bench_scheduler
//! ```
//!
//! No external deps: timing via `std::time::Instant`, JSON by hand.

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use vliw_bench::{full_corpus, rep_ilp_loop, rep_recurrence_loop};
use vliw_core::{
    assign_banks_caps, build_rcg, insert_copies, score_config, score_config_ctx, LoopContext,
    PartitionConfig,
};
use vliw_ddg::{build_ddg, compute_slack, rec_ii, rec_ii_dense};
use vliw_ir::Loop;
use vliw_machine::MachineDesc;
use vliw_sched::{schedule_loop, schedule_loop_with, ImsConfig, SchedContext, SchedProblem};

/// Nanoseconds per iteration: warm up, then repeat until ≥25 ms of samples.
fn bench_ns<R>(mut f: impl FnMut() -> R) -> f64 {
    for _ in 0..3 {
        black_box(f());
    }
    let start = Instant::now();
    let mut reps = 0u64;
    loop {
        black_box(f());
        reps += 1;
        let el = start.elapsed();
        if el.as_millis() >= 25 || reps >= 2_000_000 {
            return el.as_secs_f64() * 1e9 / reps as f64;
        }
    }
}

struct Json {
    buf: String,
    depth: usize,
    first: bool,
}

impl Json {
    fn new() -> Self {
        Json {
            buf: "{\n".into(),
            depth: 1,
            first: true,
        }
    }
    fn pad(&mut self) {
        if !self.first {
            self.buf.push_str(",\n");
        }
        self.first = false;
        for _ in 0..self.depth {
            self.buf.push_str("  ");
        }
    }
    fn num(&mut self, key: &str, v: f64) {
        self.pad();
        let _ = write!(self.buf, "\"{key}\": {v:.1}");
    }
    fn int(&mut self, key: &str, v: u64) {
        self.pad();
        let _ = write!(self.buf, "\"{key}\": {v}");
    }
    fn str(&mut self, key: &str, v: &str) {
        self.pad();
        let _ = write!(self.buf, "\"{key}\": \"{v}\"");
    }
    fn open(&mut self, key: &str) {
        self.pad();
        let _ = write!(self.buf, "\"{key}\": {{");
        self.buf.push('\n');
        self.depth += 1;
        self.first = true;
    }
    fn close(&mut self) {
        self.buf.push('\n');
        self.depth -= 1;
        for _ in 0..self.depth {
            self.buf.push_str("  ");
        }
        self.buf.push('}');
        self.first = false;
    }
    fn finish(mut self) -> String {
        while self.depth > 1 {
            self.close();
        }
        self.buf.push_str("\n}\n");
        self.buf
    }
}

fn micro_section(j: &mut Json, tag: &str, body: &Loop, machine: &MachineDesc) {
    let ideal_m =
        MachineDesc::monolithic(machine.issue_width()).with_latencies(machine.latencies.clone());
    let ddg = build_ddg(body, &machine.latencies);
    let min_ii = rec_ii(&ddg);

    j.open(tag);
    j.int("n_ops", body.n_ops() as u64);
    j.int("n_edges", ddg.edges().len() as u64);
    j.int("rec_ii", min_ii as u64);

    j.num(
        "build_ddg_ns",
        bench_ns(|| build_ddg(body, &machine.latencies)),
    );

    // RecII: O(V·E·log) Bellman–Ford binary search vs the old O(n³·log)
    // Floyd–Warshall formulation.
    let sparse = bench_ns(|| rec_ii(&ddg));
    let dense = bench_ns(|| rec_ii_dense(&ddg));
    j.num("rec_ii_sparse_ns", sparse);
    j.num("rec_ii_dense_ns", dense);
    j.num("rec_ii_speedup", dense / sparse);

    // Per-II feasibility probe: what try_ii pays per candidate II.
    let mut scratch = Vec::new();
    let feas = bench_ns(|| ddg.is_feasible_with(min_ii, &mut scratch));
    let paths = bench_ns(|| ddg.longest_paths(min_ii).is_some());
    j.num("is_feasible_ns", feas);
    j.num("longest_paths_ns", paths);
    j.num("feasibility_speedup", paths / feas);

    j.num(
        "slack_ns",
        bench_ns(|| compute_slack(&ddg, |op| machine.latencies.of(body.op(op).opcode) as i64)),
    );

    // Full schedule calls: self-contained wrapper vs precomputed context.
    let problem = SchedProblem::ideal(body, &ideal_m);
    let cfg = ImsConfig::default();
    let wrapped = bench_ns(|| schedule_loop(&problem, &ddg, &cfg).unwrap());
    let sctx = SchedContext::new(&problem, &ddg);
    let with_ctx = bench_ns(|| schedule_loop_with(&problem, &ddg, &cfg, &sctx).unwrap());
    j.num("schedule_loop_ns", wrapped);
    j.num("schedule_loop_with_ctx_ns", with_ctx);
    j.num("context_reuse_speedup", wrapped / with_ctx);

    // Eviction-heavy clustered scheduling: all ops pinned to one cluster.
    let pins = vec![vliw_machine::ClusterId(0); body.n_ops()];
    let cproblem = SchedProblem::clustered(body, machine, &pins);
    let csctx = SchedContext::new(&cproblem, &ddg);
    j.num(
        "ims_eviction_path_ns",
        bench_ns(|| schedule_loop_with(&cproblem, &ddg, &cfg, &csctx).unwrap()),
    );
    j.close();
}

fn stage_section(j: &mut Json, corpus: &[Loop], machine: &MachineDesc) {
    let cfg = PartitionConfig::default();
    let caps: Vec<usize> = machine.clusters.iter().map(|c| c.n_fus).collect();
    let ims = ImsConfig::default();

    // One timed sweep over the whole corpus per stage, in pipeline order;
    // later stages consume the artifacts cached from earlier ones.
    let t0 = Instant::now();
    let n_edges: usize = corpus
        .iter()
        .map(|l| build_ddg(l, &machine.latencies).edges().len())
        .sum();
    let build_ddg_ms = t0.elapsed().as_secs_f64() * 1e3;
    black_box(n_edges);

    let t0 = Instant::now();
    let ctxs: Vec<LoopContext> = corpus
        .iter()
        .map(|l| LoopContext::new(l, machine))
        .collect();
    let front_end_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t0 = Instant::now();
    let parts: Vec<_> = corpus
        .iter()
        .zip(&ctxs)
        .map(|(l, ctx)| {
            let rcg = build_rcg(l, &ctx.ideal, &ctx.slack, &cfg);
            assign_banks_caps(&rcg, &caps, &cfg)
        })
        .collect();
    let partition_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t0 = Instant::now();
    let clustered: Vec<_> = corpus
        .iter()
        .zip(&parts)
        .map(|(l, p)| insert_copies(l, p))
        .collect();
    let copies_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t0 = Instant::now();
    let mut total_ii = 0u64;
    for c in &clustered {
        let cddg = build_ddg(&c.body, &machine.latencies);
        let problem = SchedProblem::clustered(&c.body, machine, &c.cluster_of);
        total_ii += schedule_loop(&problem, &cddg, &ims).unwrap().ii as u64;
    }
    let clustered_sched_ms = t0.elapsed().as_secs_f64() * 1e3;

    j.open("stages");
    j.int("corpus_loops", corpus.len() as u64);
    j.num("build_ddg_ms", build_ddg_ms);
    j.num("front_end_ms", front_end_ms);
    j.num("partition_ms", partition_ms);
    j.num("insert_copies_ms", copies_ms);
    j.num("clustered_schedule_ms", clustered_sched_ms);
    j.int("total_clustered_ii", total_ii);
    j.close();
}

fn exact_section(j: &mut Json, corpus: &[Loop], machine: &MachineDesc) {
    // The branch-and-bound partitioner over the gap experiment's slice
    // (loops with ≤ 12 virtual registers), seeded with the greedy
    // partition it has to beat. Node-expansion counts are the solver's
    // work metric: they move when the bound, the symmetry breaking or the
    // dominance rule regresses, independent of machine speed.
    let cfg = PartitionConfig::default();
    let caps: Vec<usize> = machine.clusters.iter().map(|c| c.n_fus).collect();
    let small: Vec<&Loop> = corpus.iter().filter(|l| l.n_vregs() <= 12).collect();
    let inputs: Vec<_> = small
        .iter()
        .map(|l| {
            let ctx = LoopContext::new(l, machine);
            let g = build_rcg(l, &ctx.ideal, &ctx.slack, &cfg);
            let seed = assign_banks_caps(&g, &caps, &cfg);
            (g, seed)
        })
        .collect();

    let solve_all = |parallel: bool| {
        let ecfg = vliw_exact::ExactConfig {
            parallel,
            ..Default::default()
        };
        let mut nodes = 0u64;
        let mut pruned = 0u64;
        let mut dominance = 0u64;
        let mut n_optimal = 0u64;
        let t0 = Instant::now();
        for (g, seed) in &inputs {
            let r = vliw_exact::solve(g, machine.n_clusters(), Some(seed), &ecfg);
            nodes += r.stats.nodes_expanded;
            pruned += r.stats.pruned_bound;
            dominance += r.stats.dominance_assigns;
            n_optimal += r.optimal as u64;
            black_box(r.cost);
        }
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        (ms, nodes, pruned, dominance, n_optimal)
    };

    let (seq_ms, nodes, pruned, dominance, n_optimal) = solve_all(false);
    let (par_ms, ..) = solve_all(true);

    j.open("exact_partitioner");
    j.int("small_loops", small.len() as u64);
    j.int("n_optimal", n_optimal);
    j.num("solve_sequential_ms", seq_ms);
    j.num("solve_parallel_ms", par_ms);
    j.int("nodes_expanded", nodes);
    j.int("pruned_bound", pruned);
    j.int("dominance_assigns", dominance);
    j.close();
}

fn joint_section(j: &mut Json, corpus: &[Loop], machine: &MachineDesc) {
    // The joint (II, slot, bank) branch-and-bound over the same ≤12-vreg
    // slice the exact partitioner benches on. Bank-node / schedule-node /
    // propagation counts are the solver's work metric: they move when a
    // propagator, the value ordering or the symmetry breaking regresses,
    // independent of machine speed. `n_closed` guards optimality claims.
    let cfg = PartitionConfig::default();
    let jcfg = vliw_joint::JointConfig { budget_ms: 4000 };
    let small: Vec<&Loop> = corpus.iter().filter(|l| l.n_vregs() <= 12).collect();

    let mut bank_nodes = 0u64;
    let mut sched_nodes = 0u64;
    let mut propagations = 0u64;
    let mut pruned_propagation = 0u64;
    let mut pruned_bound = 0u64;
    let mut nogood_hits = 0u64;
    let mut n_closed = 0u64;
    let mut n_wins = 0u64;
    let t0 = Instant::now();
    for l in &small {
        let r = vliw_joint::solve_joint(l, machine, &cfg, &jcfg);
        bank_nodes += r.stats.bank_nodes;
        sched_nodes += r.stats.sched_nodes;
        propagations += r.stats.propagations;
        pruned_propagation += r.stats.pruned_propagation;
        pruned_bound += r.stats.pruned_bound;
        nogood_hits += r.stats.nogood_hits;
        n_closed += r.optimal as u64;
        n_wins += (r.ii < r.greedy_ii) as u64;
        black_box(r.ii);
    }
    let solve_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        n_closed,
        small.len() as u64,
        "every <=12-vreg solve must close optimally"
    );

    j.open("joint_solver");
    j.int("small_loops", small.len() as u64);
    j.int("n_closed", n_closed);
    j.int("n_joint_wins", n_wins);
    j.num("solve_ms", solve_ms);
    j.int("bank_nodes", bank_nodes);
    j.int("sched_nodes", sched_nodes);
    j.int("propagations", propagations);
    j.int("pruned_propagation", pruned_propagation);
    j.int("pruned_bound", pruned_bound);
    j.int("nogood_hits", nogood_hits);
    j.close();
}

fn joint_scaling_section(j: &mut Json, corpus: &[Loop], machine: &MachineDesc) {
    // The scaling phase: the 13–24-vreg pressure slice (corpus draws in
    // range plus the dedicated pressure family) under the interactive
    // 500 ms budget the serve tier grants. The floors below are the
    // regression contract: at least 60% of the slice must close, and no
    // solve may leave without an honest classification.
    let cfg = PartitionConfig::default();
    let jcfg = vliw_joint::JointConfig { budget_ms: 500 };
    let mut slice: Vec<Loop> = corpus
        .iter()
        .filter(|l| (13..=24).contains(&l.n_vregs()))
        .cloned()
        .collect();
    slice.extend(vliw_loopgen::pressure_corpus());

    let mut bank_nodes = 0u64;
    let mut sched_nodes = 0u64;
    let mut nogood_hits = 0u64;
    let mut nogoods_recorded = 0u64;
    let mut n_closed = 0u64;
    let mut n_bounded = 0u64;
    let mut n_budget = 0u64;
    let mut n_wins = 0u64;
    let t0 = Instant::now();
    for l in &slice {
        let r = vliw_joint::solve_joint(l, machine, &cfg, &jcfg);
        bank_nodes += r.stats.bank_nodes;
        sched_nodes += r.stats.sched_nodes;
        nogood_hits += r.stats.nogood_hits;
        nogoods_recorded += r.stats.nogoods_recorded;
        if r.optimal {
            n_closed += 1;
        } else if r.lower_bound_ii > r.seed_lb {
            n_bounded += 1;
        } else {
            n_budget += 1;
        }
        n_wins += (r.ii < r.greedy_ii) as u64;
        assert!(
            r.lower_bound_ii >= r.seed_lb && r.lower_bound_ii <= r.ii,
            "{}: bound {} outside [{}, {}]",
            l.name,
            r.lower_bound_ii,
            r.seed_lb,
            r.ii
        );
        black_box(r.ii);
    }
    let solve_ms = t0.elapsed().as_secs_f64() * 1e3;
    // Floors (the checked-in regression contract).
    let closed_floor = (slice.len() as u64 * 6).div_ceil(10);
    assert!(
        n_closed >= closed_floor,
        "joint scaling closed {n_closed}/{} — floor is {closed_floor} (60%)",
        slice.len()
    );

    j.open("joint_scaling");
    j.int("slice_loops", slice.len() as u64);
    j.int("budget_ms", 500);
    j.int("n_closed", n_closed);
    j.int("n_bounded", n_bounded);
    j.int("n_budget_exceeded", n_budget);
    j.int("n_joint_wins", n_wins);
    j.int("closed_floor", closed_floor);
    j.num("solve_ms", solve_ms);
    j.int("bank_nodes", bank_nodes);
    j.int("sched_nodes", sched_nodes);
    j.int("nogood_hits", nogood_hits);
    j.int("nogoods_recorded", nogoods_recorded);
    j.close();
}

fn tuner_section(j: &mut Json, corpus: &[Loop], machine: &MachineDesc) {
    // The weight-tuner workload: score the same training set at many grid
    // points. `score_config` rebuilds the front end per call (the old
    // shape); `score_config_ctx` shares one LoopContext per loop.
    let train: Vec<Loop> = corpus.iter().take(24).cloned().collect();
    let cfg = PartitionConfig::default();
    const POINTS: usize = 8;

    let t0 = Instant::now();
    for _ in 0..POINTS {
        black_box(score_config(&train, machine, &cfg));
    }
    let rebuild_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t0 = Instant::now();
    let ctxs: Vec<LoopContext> = train.iter().map(|l| LoopContext::new(l, machine)).collect();
    for _ in 0..POINTS {
        black_box(score_config_ctx(&train, &ctxs, machine, &cfg));
    }
    let shared_ms = t0.elapsed().as_secs_f64() * 1e3;

    j.open("tuner_grid");
    j.int("training_loops", train.len() as u64);
    j.int("grid_points", POINTS as u64);
    j.num("rebuild_per_point_ms", rebuild_ms);
    j.num("shared_context_ms", shared_ms);
    j.num("speedup", rebuild_ms / shared_ms);
    j.close();
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_scheduler.json".into());
    let machine = MachineDesc::embedded(4, 4);
    let corpus = full_corpus();

    let mut j = Json::new();
    j.str("machine", "embedded(4,4)");
    j.str(
        "note",
        "ns/ms wall-clock, release build; rerun: cargo run --release -p vliw-bench --bin bench_scheduler",
    );

    j.open("micro");
    micro_section(&mut j, "ilp_daxpy_u8", &rep_ilp_loop(), &machine);
    micro_section(&mut j, "recurrence_u4", &rep_recurrence_loop(), &machine);
    micro_section(
        &mut j,
        "wide_daxpy_u32",
        &vliw_loopgen::Family::Daxpy.build(0, 32, 64),
        &machine,
    );
    j.close();

    stage_section(&mut j, &corpus, &machine);
    exact_section(&mut j, &corpus, &machine);
    joint_section(&mut j, &corpus, &machine);
    joint_scaling_section(&mut j, &corpus, &machine);
    tuner_section(&mut j, &corpus, &machine);

    let json = j.finish();
    std::fs::write(&out_path, &json).expect("write baseline json");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
