//! Cache-path benchmark for the compile service.
//!
//! Sweeps the corpus across two paper machines through
//! [`vliw_serve::CachedCompiler`] four ways — direct (no cache), cold cache
//! (every request compiles and populates both tiers), warm memory (same
//! engine again) and warm disk (fresh engine over the populated store) —
//! and writes the wall-clock comparison as JSON, the checked-in
//! `BENCH_serve.json` at the repo root. Rerun with
//!
//! ```text
//! cargo run --release -p vliw-bench --bin bench_serve
//! ```

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use vliw_bench::full_corpus;
use vliw_ir::Loop;
use vliw_machine::MachineDesc;
use vliw_pipeline::{run_corpus_grid_with, run_loop, LoopResult, PipelineConfig};
use vliw_serve::{CachedCompiler, CompileRequest, DiskStore, TieredCache};

struct Json {
    buf: String,
    first: bool,
}

impl Json {
    fn new() -> Self {
        Json {
            buf: "{\n".into(),
            first: true,
        }
    }
    fn pad(&mut self) {
        if !self.first {
            self.buf.push_str(",\n");
        }
        self.first = false;
        self.buf.push_str("  ");
    }
    fn num(&mut self, key: &str, v: f64) {
        self.pad();
        let _ = write!(self.buf, "\"{key}\": {v:.2}");
    }
    fn int(&mut self, key: &str, v: u64) {
        self.pad();
        let _ = write!(self.buf, "\"{key}\": {v}");
    }
    fn str(&mut self, key: &str, v: &str) {
        self.pad();
        let _ = write!(self.buf, "\"{key}\": \"{v}\"");
    }
    fn finish(mut self) -> String {
        self.buf.push_str("\n}\n");
        self.buf
    }
}

fn cached_sweep(
    engine: &Arc<CachedCompiler>,
    corpus: &[Loop],
    machines: &[MachineDesc],
    cfg: &PipelineConfig,
) -> f64 {
    let runner = |l: &Loop, m: &MachineDesc, c: &PipelineConfig| -> LoopResult {
        let req = CompileRequest::from_parts(l, m, c);
        let key = req.cache_key();
        engine
            .compile_canonical(&req, &key, None)
            .expect("cached compile")
            .0
            .to_loop_result()
    };
    let t0 = Instant::now();
    let grid = run_corpus_grid_with(corpus, machines, cfg, &runner);
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(grid.len(), machines.len());
    ms
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_serve.json".into());
    let corpus = full_corpus();
    let machines = [MachineDesc::embedded(4, 4), MachineDesc::copy_unit(4, 4)];
    let cfg = PipelineConfig::default();
    let n_requests = (corpus.len() * machines.len()) as u64;

    let root = std::env::temp_dir().join(format!("vliw-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // Reference: the same sweep with no cache in the path.
    let t0 = Instant::now();
    let grid = run_corpus_grid_with(&corpus, &machines, &cfg, &run_loop);
    let direct_ms = t0.elapsed().as_secs_f64() * 1e3;
    let baseline: Vec<Vec<LoopResult>> = grid;

    // Cold: every request misses, compiles, and populates both tiers.
    let engine = CachedCompiler::new(TieredCache::new(8192, Some(DiskStore::new(&root))));
    let cold_ms = cached_sweep(&engine, &corpus, &machines, &cfg);
    let cold_snap = engine.stats().snapshot();
    assert_eq!(cold_snap.compiles, n_requests, "cold sweep compiles all");

    // Warm memory: identical sweep on the same engine.
    let warm_mem_ms = cached_sweep(&engine, &corpus, &machines, &cfg);
    let mem_snap = engine.stats().snapshot();
    assert_eq!(mem_snap.compiles, n_requests, "warm sweep compiles nothing");

    // Warm disk: a fresh engine over the populated store (cold memory).
    let fresh = CachedCompiler::new(TieredCache::new(8192, Some(DiskStore::new(&root))));
    let warm_disk_ms = cached_sweep(&fresh, &corpus, &machines, &cfg);
    let disk_snap = fresh.stats().snapshot();
    assert_eq!(disk_snap.compiles, 0, "disk-warm sweep compiles nothing");

    // Cached results agree with the direct path on every scalar the
    // experiment harness consumes.
    let runner_check = |l: &Loop, m: &MachineDesc, c: &PipelineConfig| -> LoopResult {
        let req = CompileRequest::from_parts(l, m, c);
        let key = req.cache_key();
        fresh
            .compile_canonical(&req, &key, None)
            .expect("cached compile")
            .0
            .to_loop_result()
    };
    for (m_idx, m) in machines.iter().enumerate() {
        for (l_idx, l) in corpus.iter().enumerate() {
            let cached = runner_check(l, m, &cfg);
            let direct = &baseline[m_idx][l_idx];
            assert_eq!(cached.clustered_ii, direct.clustered_ii, "{}", l.name);
            assert_eq!(cached.normalized, direct.normalized, "{}", l.name);
        }
    }

    let mut j = Json::new();
    j.str("workload", "corpus x [embedded(4,4), copyunit(4,4)]");
    j.int("corpus_loops", corpus.len() as u64);
    j.int("requests_per_sweep", n_requests);
    j.str(
        "note",
        "ms wall-clock, release build; rerun: cargo run --release -p vliw-bench --bin bench_serve",
    );
    j.num("direct_ms", direct_ms);
    j.num("cold_cache_ms", cold_ms);
    j.num("warm_mem_ms", warm_mem_ms);
    j.num("warm_disk_ms", warm_disk_ms);
    j.num("cold_overhead_ratio", cold_ms / direct_ms);
    j.num("warm_mem_speedup_vs_cold", cold_ms / warm_mem_ms);
    j.num("warm_disk_speedup_vs_cold", cold_ms / warm_disk_ms);
    j.int("cold_compiles", cold_snap.compiles);
    j.int("warm_mem_hits", mem_snap.mem_hits);
    j.int("warm_disk_hits", disk_snap.disk_hits);

    let json = j.finish();
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("{json}");
    eprintln!("wrote {out_path}");

    let _ = std::fs::remove_dir_all(&root);
    assert!(
        cold_ms / warm_mem_ms >= 5.0,
        "warm-memory sweep must be >=5x faster than cold (got {:.1}x)",
        cold_ms / warm_mem_ms
    );
}
