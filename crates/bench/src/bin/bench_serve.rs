//! Cache-path and wire-protocol benchmark for the compile service.
//!
//! Sweeps the corpus across two paper machines through
//! [`vliw_serve::CachedCompiler`] four ways — direct (no cache), cold cache
//! (every request compiles and populates both tiers), warm memory (same
//! engine again) and warm disk (fresh engine over the populated store) —
//! runs a variant corpus (a generated isomorphic renaming of every loop,
//! which must warm-hit the semantic alias instead of compiling), then
//! measures the wire protocol over a real loopback server: per-line
//! `compile` round trips vs one `compile_batch`, and a two-peer sharded
//! sweep (semantic routing, renamed variants included). Results are
//! written as JSON, the checked-in `BENCH_serve.json` at the repo root.
//! Rerun with
//!
//! ```text
//! cargo run --release -p vliw-bench --bin bench_serve
//! ```
//!
//! The exits double as regression gates: the cold-path overhead ratio and
//! the batch-vs-per-line speedup are asserted, not just recorded.

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write as _};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use vliw_bench::full_corpus;
use vliw_ir::Loop;
use vliw_machine::MachineDesc;
use vliw_pipeline::{run_corpus_grid_with, run_loop, LoopResult, PipelineConfig};
use vliw_serve::{
    CachedCompiler, Client, CompileRequest, DiskStore, Json as WireJson, Server, ServerConfig,
    ServerCore, ShardedClient, ShedPolicy, TieredCache,
};

struct Json {
    buf: String,
    first: bool,
}

impl Json {
    fn new() -> Self {
        Json {
            buf: "{\n".into(),
            first: true,
        }
    }
    fn pad(&mut self) {
        if !self.first {
            self.buf.push_str(",\n");
        }
        self.first = false;
        self.buf.push_str("  ");
    }
    fn num(&mut self, key: &str, v: f64) {
        self.pad();
        let _ = write!(self.buf, "\"{key}\": {v:.2}");
    }
    fn int(&mut self, key: &str, v: u64) {
        self.pad();
        let _ = write!(self.buf, "\"{key}\": {v}");
    }
    fn str(&mut self, key: &str, v: &str) {
        self.pad();
        let _ = write!(self.buf, "\"{key}\": \"{v}\"");
    }
    fn finish(mut self) -> String {
        self.buf.push_str("\n}\n");
        self.buf
    }
}

fn cached_sweep(
    engine: &Arc<CachedCompiler>,
    corpus: &[Loop],
    machines: &[MachineDesc],
    cfg: &PipelineConfig,
) -> f64 {
    let runner = |l: &Loop, m: &MachineDesc, c: &PipelineConfig| -> LoopResult {
        engine
            .compile_parts(l, m, c, None)
            .expect("cached compile")
            .0
            .to_loop_result()
    };
    let t0 = Instant::now();
    let grid = run_corpus_grid_with(corpus, machines, cfg, &runner);
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(grid.len(), machines.len());
    ms
}

/// Bind an in-process server over `engine` and return its address plus the
/// serving thread.
fn spawn_server(engine: Arc<CachedCompiler>) -> (String, std::thread::JoinHandle<()>) {
    let server = Server::bind(
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            default_timeout: Duration::from_secs(60),
            batch_parallelism: 8,
            ..ServerConfig::default()
        },
        engine,
    )
    .expect("bind loopback server");
    let addr = server.local_addr().expect("bound address").to_string();
    let thread = std::thread::spawn(move || server.run());
    (addr, thread)
}

/// Like [`spawn_server`], but with an explicit serving core and room for
/// the 512-connection concurrency runs.
fn spawn_server_core(
    engine: Arc<CachedCompiler>,
    core: ServerCore,
) -> (String, std::thread::JoinHandle<()>) {
    let server = Server::bind(
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            default_timeout: Duration::from_secs(60),
            batch_parallelism: 8,
            core,
            max_conns: 2048,
            ..ServerConfig::default()
        },
        engine,
    )
    .expect("bind loopback server");
    let addr = server.local_addr().expect("bound address").to_string();
    let thread = std::thread::spawn(move || server.run());
    (addr, thread)
}

/// The canonical per-line `compile` wire line for `req`.
fn compile_line(req: &CompileRequest) -> String {
    let mut line = WireJson::obj([
        ("op", WireJson::Str("compile".into())),
        ("request", req.to_json()),
    ])
    .render();
    line.push('\n');
    line
}

struct ConcRun {
    rps: f64,
    p99_us: f64,
    served: u64,
}

/// `total` warm requests round-robined over `k` connections, one request in
/// flight at a time, so the numbers isolate how each core multiplexes
/// connections rather than raw compile throughput.
///
/// A connection whose response does not arrive within a second is written
/// off as dead: the thread-pool baseline pins one worker to one connection
/// for its lifetime, so with 2 workers it starves the other `k - 2`
/// connections forever. Four consecutive write-offs write off every
/// connection that has never answered, so the baseline finishes in seconds
/// instead of hours while `served` records honestly how few of the `k`
/// connections it actually multiplexed.
fn concurrency_run(addr: &str, k: usize, total: usize, line: &[u8]) -> ConcRun {
    let mut conns: Vec<Option<BufReader<TcpStream>>> = (0..k)
        .map(|_| {
            let s = TcpStream::connect(addr).expect("connect bench connection");
            s.set_read_timeout(Some(Duration::from_secs(1)))
                .expect("set read timeout");
            Some(BufReader::new(s))
        })
        .collect();
    let mut ever_ok = vec![false; k];
    let mut lat_us: Vec<f64> = Vec::with_capacity(total);
    let mut streak = 0u32;
    let t0 = Instant::now();
    let mut sent = 0usize;
    let mut next = 0usize;
    while sent < total && conns.iter().any(Option::is_some) {
        let slot = next % k;
        next += 1;
        let Some(conn) = conns[slot].as_mut() else {
            continue;
        };
        sent += 1;
        let t = Instant::now();
        let mut resp = String::new();
        let ok = conn.get_mut().write_all(line).is_ok()
            && matches!(conn.read_line(&mut resp), Ok(n) if n > 0);
        if ok {
            lat_us.push(t.elapsed().as_secs_f64() * 1e6);
            ever_ok[slot] = true;
            streak = 0;
        } else {
            conns[slot] = None;
            streak += 1;
            if streak >= 4 {
                for (s, conn) in conns.iter_mut().enumerate() {
                    if !ever_ok[s] {
                        *conn = None;
                    }
                }
            }
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let served = lat_us.len() as u64;
    lat_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    let p99_us = match lat_us.len() {
        0 => f64::INFINITY,
        n => lat_us[((n - 1) as f64 * 0.99).round() as usize],
    };
    ConcRun {
        rps: served as f64 / elapsed,
        p99_us,
        served,
    }
}

/// A deep joint-partitioner instance (daxpy unrolled 6x: 30 ops, 25 vregs
/// on `embedded(4,4)`) whose II=2 rung is a long refutation — the
/// canonical heavy-lane request. Distinct `budget_ms` values give distinct
/// cache keys, so every instance really compiles.
fn heavy_joint_request(budget_ms: u64) -> CompileRequest {
    use vliw_ir::{LoopBuilder, RegClass};
    let mut b = LoopBuilder::new("hard_daxpy_u6");
    let x = b.array("x", RegClass::Float, 1024);
    let y = b.array("y", RegClass::Float, 1024);
    let a = b.live_in_float("a");
    for u in 0..6i64 {
        let xv = b.load(x, u, 6);
        let yv = b.load(y, u, 6);
        let p = b.fmul(a, xv);
        let s = b.fadd(yv, p);
        b.store(y, u, 6, s);
    }
    let body = b.finish(128);
    let cfg = PipelineConfig {
        partitioner: vliw_pipeline::PartitionerKind::Joint { budget_ms },
        ..PipelineConfig::default()
    };
    CompileRequest::from_parts(&body, &MachineDesc::embedded(4, 4), &cfg)
}

struct OverloadInteractive {
    p99_us: f64,
    served: u64,
    sheds: u64,
}

/// Warm round trips round-robined over `k` connections while the heavy
/// flood runs, counting any typed shed in the responses (the governor
/// must never shed interactive work).
fn overload_interactive_run(
    addr: &str,
    k: usize,
    total: usize,
    line: &[u8],
) -> OverloadInteractive {
    let mut conns: Vec<BufReader<TcpStream>> = (0..k)
        .map(|_| {
            let s = TcpStream::connect(addr).expect("connect interactive connection");
            s.set_read_timeout(Some(Duration::from_secs(10)))
                .expect("set read timeout");
            BufReader::new(s)
        })
        .collect();
    let mut lat_us: Vec<f64> = Vec::with_capacity(total);
    let mut sheds = 0u64;
    for i in 0..total {
        let conn = &mut conns[i % k];
        let t = Instant::now();
        let mut resp = String::new();
        conn.get_mut().write_all(line).expect("interactive write");
        let n = conn.read_line(&mut resp).expect("interactive read");
        assert!(n > 0, "interactive connection closed under load");
        lat_us.push(t.elapsed().as_secs_f64() * 1e6);
        if resp.contains("\"error_kind\":\"shed\"") {
            sheds += 1;
        }
    }
    let served = lat_us.len() as u64;
    lat_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    let p99_us = lat_us[((lat_us.len() - 1) as f64 * 0.99).round() as usize];
    OverloadInteractive {
        p99_us,
        served,
        sheds,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_serve.json".into());
    let corpus = full_corpus();
    let machines = [MachineDesc::embedded(4, 4), MachineDesc::copy_unit(4, 4)];
    let cfg = PipelineConfig::default();
    let n_requests = (corpus.len() * machines.len()) as u64;

    let root = std::env::temp_dir().join(format!("vliw-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // Reference: the same sweep with no cache in the path.
    let t0 = Instant::now();
    let grid = run_corpus_grid_with(&corpus, &machines, &cfg, &run_loop);
    let direct_ms = t0.elapsed().as_secs_f64() * 1e3;
    let baseline: Vec<Vec<LoopResult>> = grid;

    // Cold: every request misses, compiles, and populates both tiers (the
    // disk tier through the write-behind queue, off the request path).
    let engine = CachedCompiler::new(TieredCache::new(8192, Some(DiskStore::new(&root))));
    let cold_ms = cached_sweep(&engine, &corpus, &machines, &cfg);
    let cold_snap = engine.stats().snapshot();
    // The corpus contains a handful of alpha-equivalent loops; those are
    // served from the semantic alias their class representative stored, so
    // even the cold sweep compiles only one loop per equivalence class.
    assert_eq!(
        cold_snap.compiles + cold_snap.canon_hits,
        n_requests,
        "cold sweep compiles one representative per class"
    );

    // Warm memory: identical sweep on the same engine.
    let warm_mem_ms = cached_sweep(&engine, &corpus, &machines, &cfg);
    let mem_snap = engine.stats().snapshot();
    assert_eq!(
        mem_snap.compiles, cold_snap.compiles,
        "warm sweep compiles nothing"
    );

    // Warm disk: a fresh engine over the populated store (cold memory).
    // Flush first so every write-behind entry is on disk.
    engine.flush();
    let fresh = CachedCompiler::new(TieredCache::new(8192, Some(DiskStore::new(&root))));
    let warm_disk_ms = cached_sweep(&fresh, &corpus, &machines, &cfg);
    let disk_snap = fresh.stats().snapshot();
    assert_eq!(disk_snap.compiles, 0, "disk-warm sweep compiles nothing");

    // Cached results agree with the direct path on every scalar the
    // experiment harness consumes.
    let runner_check = |l: &Loop, m: &MachineDesc, c: &PipelineConfig| -> LoopResult {
        let req = CompileRequest::from_parts(l, m, c);
        let key = req.cache_key();
        fresh
            .compile_canonical(&req, &key, None)
            .expect("cached compile")
            .0
            .to_loop_result()
    };
    for (m_idx, m) in machines.iter().enumerate() {
        for (l_idx, l) in corpus.iter().enumerate() {
            let cached = runner_check(l, m, &cfg);
            let direct = &baseline[m_idx][l_idx];
            assert_eq!(cached.clustered_ii, direct.clustered_ii, "{}", l.name);
            assert_eq!(cached.normalized, direct.normalized, "{}", l.name);
        }
    }

    // ---- variant corpus: isomorphic renamings must warm-hit --------------
    // One generated variant per corpus loop (register renaming, commutative
    // operand swap, dependence-legal statement permutation): every variant
    // has a fresh exact key, but its alpha-canonical form matches the
    // warmed loop's, so the semantic alias must convert what would be a
    // cold compile into a warm hit — and the served result must be exactly
    // the representative's alias entry pushed through the variant's own
    // witness, bit-for-bit on the wire.
    let var_machine = &machines[0];
    let variants: Vec<(CompileRequest, CompileRequest)> = corpus
        .iter()
        .enumerate()
        .map(|(i, l)| {
            let base = CompileRequest::from_parts(l, var_machine, &cfg);
            let var = vliw_normal::variant(l, 1 + i as u64 * 13);
            (base, CompileRequest::from_parts(&var, var_machine, &cfg))
        })
        .collect();
    let n_variants = variants.len() as u64;
    assert!(n_variants >= 200, "variant corpus too small: {n_variants}");
    let before = fresh.stats().snapshot();
    let t0 = Instant::now();
    let mut variant_hits = 0u64;
    for (base, var) in &variants {
        assert_ne!(base.cache_key(), var.cache_key(), "variant text differs");
        let (served, src) = fresh.compile(var, None).expect("variant compile");
        if src.is_cache_hit() {
            variant_hits += 1;
        }
        // The canonical request's exact key IS the semantic key, so this
        // fetches the alias entry itself; mapping it out through the
        // variant's witness must reproduce the served bytes exactly.
        let (canon_req, _) = base.semantic_canonicalize().expect("canonicalize");
        let (alias_entry, alias_src) = fresh.compile(&canon_req, None).expect("alias fetch");
        assert!(alias_src.is_cache_hit(), "alias entry must be cached");
        let (_, var_w) = var.semantic_canonicalize().expect("variant witness");
        let expected = alias_entry.from_canonical_space(var.cache_key(), &var_w);
        assert_eq!(
            served.to_json().render(),
            expected.to_json().render(),
            "variant result must be the alias entry mapped through the witness"
        );
    }
    let variant_ms = t0.elapsed().as_secs_f64() * 1e3;
    let after = fresh.stats().snapshot();
    let variant_canon_hits = after.canon_hits - before.canon_hits;
    let variant_hit_rate = variant_hits as f64 / n_variants as f64;

    // ---- wire protocol: per-line vs batched, over the warm engine --------
    let mut reqs: Vec<CompileRequest> = Vec::with_capacity(n_requests as usize);
    for m in &machines {
        for l in &corpus {
            reqs.push(CompileRequest::from_parts(l, m, &cfg));
        }
    }

    let (addr, server_thread) = spawn_server(Arc::clone(&engine));
    let mut client = Client::connect(&addr).expect("connect");

    // Both wire phases are warm and idempotent; take the best of three
    // passes so a scheduler hiccup doesn't masquerade as protocol cost.
    let mut per_line_ms = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for req in &reqs {
            let served = client.compile(req, None).expect("warm wire compile");
            assert!(served.is_cache_hit(), "served={}", served.served);
        }
        per_line_ms = per_line_ms.min(t0.elapsed().as_secs_f64() * 1e3);
    }

    let mut batch_ms = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        let batch = client
            .compile_batch(&reqs, None, Some(8))
            .expect("warm wire batch");
        batch_ms = batch_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        assert_eq!(batch.len(), reqs.len());
        for res in &batch {
            assert!(res.as_ref().expect("batch entry").is_cache_hit());
        }
    }

    client.shutdown().expect("shutdown");
    server_thread.join().expect("server exits");

    // ---- two-peer sharded sweep ------------------------------------------
    let engine_a = CachedCompiler::new(TieredCache::new(8192, None));
    let engine_b = CachedCompiler::new(TieredCache::new(8192, None));
    let (addr_a, thread_a) = spawn_server(Arc::clone(&engine_a));
    let (addr_b, thread_b) = spawn_server(Arc::clone(&engine_b));
    let mut sharded = ShardedClient::new([addr_a, addr_b]);

    let cold_batch = sharded
        .compile_batch(&reqs, None, Some(8))
        .expect("sharded cold batch");
    assert!(cold_batch.iter().all(Result::is_ok));

    let t0 = Instant::now();
    let warm_batch = sharded
        .compile_batch(&reqs, None, Some(8))
        .expect("sharded warm batch");
    let sharded_batch_ms = t0.elapsed().as_secs_f64() * 1e3;
    for res in &warm_batch {
        assert!(res.as_ref().expect("sharded entry").is_cache_hit());
    }
    assert_eq!(sharded.failovers(), 0, "both peers stayed up");

    let mut shard_counts = [0u64; 2];
    for req in &reqs {
        // Routing is by semantic key so isomorphic variants colocate.
        let key = req
            .canonicalize()
            .expect("canonical")
            .semantic_key()
            .expect("semantic");
        shard_counts[sharded.ring().route(&key).expect("route")] += 1;
    }
    let shard_max = *shard_counts.iter().max().unwrap() as f64;
    let shard_min = *shard_counts.iter().min().unwrap() as f64;

    // Renamed variants of warmed loops route to the same peer as their
    // representative and hit its semantic alias — across the wire, too.
    let mut sharded_variant_hits = 0u64;
    let sharded_variant_total = 16u64.min(variants.len() as u64);
    for (_, var) in variants.iter().take(sharded_variant_total as usize) {
        let (res, _peer) = sharded.compile(var, None).expect("sharded variant");
        if res.is_cache_hit() {
            sharded_variant_hits += 1;
        }
    }

    assert_eq!(sharded.shutdown_all(), 2);
    thread_a.join().expect("peer A exits");
    thread_b.join().expect("peer B exits");

    // ---- concurrency: 1 vs 64 vs 512 clients, reactor vs thread pool -----
    // Warm cache-hit round trips over the same 2-worker engine, so the
    // comparison isolates connection multiplexing: the reactor holds all
    // 512 sockets on one thread, the thread-pool baseline can only ever
    // serve as many connections as it has workers.
    let conc_total = 2048usize;
    let line = compile_line(&reqs[0]);

    let (addr_r, thread_r) = spawn_server_core(Arc::clone(&engine), ServerCore::Reactor);
    let r1 = concurrency_run(&addr_r, 1, conc_total, line.as_bytes());
    let r64 = concurrency_run(&addr_r, 64, conc_total, line.as_bytes());
    let r512 = concurrency_run(&addr_r, 512, conc_total, line.as_bytes());
    Client::connect(&addr_r)
        .expect("connect for shutdown")
        .shutdown()
        .expect("shutdown reactor server");
    thread_r.join().expect("reactor server exits");

    let (addr_t, thread_t) = spawn_server_core(Arc::clone(&engine), ServerCore::ThreadPool);
    let t1 = concurrency_run(&addr_t, 1, conc_total, line.as_bytes());
    let t512 = concurrency_run(&addr_t, 512, conc_total, line.as_bytes());
    Client::connect(&addr_t)
        .expect("connect for shutdown")
        .shutdown()
        .expect("shutdown thread-pool server");
    thread_t.join().expect("thread-pool server exits");

    // ---- overload: governed lanes under a heavy flood --------------------
    // 512 client connections against a 2-worker reactor with a 1-worker
    // heavy lane and a depth-4 shed policy: ~10% of the connections submit
    // deep joint solves (each a distinct cache key, so each really
    // compiles), the other ~90% replay warm cache hits. The overload
    // contract: interactive traffic is never shed and its p99 stays within
    // 2x of the unloaded p99; heavy overflow is shed with a typed
    // retryable error that `compile_with_retry` drives to completion.
    let overload_conns = 512usize;
    let heavy_total = overload_conns / 10; // 51
    let interactive_conns = overload_conns - heavy_total;
    let overload_server = Server::bind(
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            default_timeout: Duration::from_secs(60),
            batch_parallelism: 8,
            core: ServerCore::Reactor,
            max_conns: 2048,
            heavy_lane_workers: 1,
            shed_policy: ShedPolicy::Depth(4),
            ..ServerConfig::default()
        },
        Arc::clone(&engine),
    )
    .expect("bind overload server");
    let addr_o = overload_server
        .local_addr()
        .expect("bound address")
        .to_string();
    let thread_o = std::thread::spawn(move || overload_server.run());

    // Unloaded baseline on the same server, before any flood.
    let unloaded = concurrency_run(&addr_o, 1, 512, line.as_bytes());

    // The flood: 8 threads drive the heavy requests with shed-retry.
    use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
    let heavy_done = Arc::new(AtomicU64::new(0));
    let heavy_retries = Arc::new(AtomicU64::new(0));
    let flood: Vec<_> = (0..8u64)
        .map(|t| {
            let addr = addr_o.clone();
            let done = Arc::clone(&heavy_done);
            let retries = Arc::clone(&heavy_retries);
            let share: Vec<u64> = (0..heavy_total as u64).filter(|i| i % 8 == t).collect();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).expect("heavy connect");
                for i in share {
                    // 40-90ms solver budgets: long enough to congest a
                    // 1-worker heavy lane, short enough to finish the
                    // phase in seconds.
                    let req = heavy_joint_request(40 + i);
                    let (_, r) = c
                        .compile_with_retry(&req, None, 24)
                        .expect("heavy compile retried to completion");
                    retries.fetch_add(u64::from(r), AtomicOrdering::Relaxed);
                    done.fetch_add(1, AtomicOrdering::Relaxed);
                }
            })
        })
        .collect();

    // Let the flood saturate the heavy lane, then measure interactive.
    std::thread::sleep(Duration::from_millis(100));
    let inter = overload_interactive_run(&addr_o, interactive_conns, 4096, line.as_bytes());

    for f in flood {
        f.join().expect("heavy flood thread");
    }
    let heavy_completed = heavy_done.load(AtomicOrdering::Relaxed);
    let heavy_shed_retries = heavy_retries.load(AtomicOrdering::Relaxed);

    Client::connect(&addr_o)
        .expect("connect for shutdown")
        .shutdown()
        .expect("shutdown overload server");
    thread_o.join().expect("overload server exits");

    let mut j = Json::new();
    j.str("workload", "corpus x [embedded(4,4), copyunit(4,4)]");
    j.int("corpus_loops", corpus.len() as u64);
    j.int("requests_per_sweep", n_requests);
    j.str(
        "note",
        "ms wall-clock, release build; rerun: cargo run --release -p vliw-bench --bin bench_serve",
    );
    j.num("direct_ms", direct_ms);
    j.num("cold_cache_ms", cold_ms);
    j.num("warm_mem_ms", warm_mem_ms);
    j.num("warm_disk_ms", warm_disk_ms);
    j.num("cold_overhead_ratio", cold_ms / direct_ms);
    j.num("warm_mem_speedup_vs_cold", cold_ms / warm_mem_ms);
    j.num("warm_disk_speedup_vs_cold", cold_ms / warm_disk_ms);
    j.int("cold_compiles", cold_snap.compiles);
    j.int("cold_canon_hits", cold_snap.canon_hits);
    j.int("warm_mem_hits", mem_snap.mem_hits);
    j.int("warm_disk_hits", disk_snap.disk_hits);
    j.int("variant_requests", n_variants);
    j.int("variant_warm_hits", variant_hits);
    j.int("variant_canon_hits", variant_canon_hits);
    j.num("variant_hit_rate", variant_hit_rate);
    j.num("variant_corpus_ms", variant_ms);
    j.num("per_line_ms", per_line_ms);
    j.num("batch_ms", batch_ms);
    j.num("batch_speedup_vs_per_line", per_line_ms / batch_ms);
    j.num("sharded_warm_batch_ms", sharded_batch_ms);
    j.int("sharded_peers", 2);
    j.num("shard_balance_max_min", shard_max / shard_min);
    j.int("sharded_variant_requests", sharded_variant_total);
    j.int("sharded_variant_hits", sharded_variant_hits);
    j.int("conc_requests_per_run", conc_total as u64);
    j.num("conc_reactor_rps_1", r1.rps);
    j.num("conc_reactor_rps_64", r64.rps);
    j.num("conc_reactor_rps_512", r512.rps);
    j.num("conc_reactor_p99_us_1", r1.p99_us);
    j.num("conc_reactor_p99_us_512", r512.p99_us);
    j.int("conc_reactor_served_512", r512.served);
    j.num("conc_threadpool_rps_1", t1.rps);
    j.num("conc_threadpool_rps_512", t512.rps);
    j.int("conc_threadpool_served_512", t512.served);
    j.num("conc_512_speedup_vs_threadpool", r512.rps / t512.rps);
    j.int("overload_conns", overload_conns as u64);
    j.int("overload_heavy_requests", heavy_total as u64);
    j.int("overload_interactive_requests", inter.served);
    j.num("overload_unloaded_p99_us", unloaded.p99_us);
    j.num("overload_interactive_p99_us", inter.p99_us);
    j.int("overload_interactive_sheds", inter.sheds);
    j.int("overload_heavy_completed", heavy_completed);
    j.int("overload_heavy_shed_retries", heavy_shed_retries);

    let json = j.finish();
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("{json}");
    eprintln!("wrote {out_path}");

    let _ = std::fs::remove_dir_all(&root);
    assert!(
        cold_ms / warm_mem_ms >= 5.0,
        "warm-memory sweep must be >=5x faster than cold (got {:.1}x)",
        cold_ms / warm_mem_ms
    );
    assert!(
        cold_ms / direct_ms <= 3.83,
        "cold-path overhead regressed past the pre-optimisation baseline \
         (got {:.2}x, baseline 3.83x)",
        cold_ms / direct_ms
    );
    // Under the thread-per-connection core a dedicated blocked thread
    // served per-line round trips with zero handoffs, so batching's
    // amortisation was worth >=3x. The reactor core routes per-line and
    // batch work through the same readiness loop + worker pool, which
    // narrows the structural gap (both now pay one pool handoff); batch
    // must still win clearly, it just wins less.
    assert!(
        per_line_ms / batch_ms >= 1.5,
        "one compile_batch must beat {} per-line round trips by >=1.5x (got {:.1}x)",
        reqs.len(),
        per_line_ms / batch_ms
    );
    assert!(
        shard_max / shard_min <= 2.0,
        "consistent hashing must keep shard loads within 2x (got {:.2}x)",
        shard_max / shard_min
    );
    assert!(
        variant_hit_rate >= 0.90,
        "isomorphic variants must warm-hit the semantic alias at >=90% \
         (got {:.1}% over {n_variants})",
        variant_hit_rate * 100.0
    );
    assert!(
        sharded_variant_hits == sharded_variant_total,
        "semantic routing must land every renamed variant on its \
         representative's peer cache ({sharded_variant_hits}/{sharded_variant_total} hit)"
    );
    assert_eq!(
        r512.served, conc_total as u64,
        "the reactor must serve every request across 512 connections \
         (served {} of {conc_total})",
        r512.served
    );
    assert!(
        r512.rps / t512.rps >= 4.0,
        "reactor warm throughput at 512 connections must beat the \
         thread-pool baseline by >=4x (got {:.1}x)",
        r512.rps / t512.rps
    );
    assert!(
        r512.p99_us <= (2.0 * r1.p99_us).max(2000.0),
        "reactor p99 at 512 connections must stay within 2x of the \
         1-connection p99 (got {:.0}us vs {:.0}us)",
        r512.p99_us,
        r1.p99_us
    );
    // ---- overload floors (the governor's contract) -----------------------
    assert_eq!(
        inter.sheds, 0,
        "interactive traffic must never be shed ({} sheds)",
        inter.sheds
    );
    assert!(
        inter.p99_us <= (2.0 * unloaded.p99_us).max(2000.0),
        "interactive p99 under heavy flood must stay within 2x of the \
         unloaded p99 (got {:.0}us vs {:.0}us)",
        inter.p99_us,
        unloaded.p99_us
    );
    assert_eq!(
        heavy_completed, heavy_total as u64,
        "every shed heavy request must retry to completion \
         ({heavy_completed} of {heavy_total})"
    );
    assert!(
        heavy_shed_retries > 0,
        "the depth-4 policy must actually shed under a {heavy_total}-deep \
         heavy flood (0 retries observed — the overload floor is vacuous)"
    );
}
