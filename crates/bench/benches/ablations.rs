//! Ablations — partitioner comparison (Ablation A), copy-latency
//! sensitivity (Ablation B, §6.3), and the iterated-greedy extension (§7).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vliw_bench::{corpus_slice, full_corpus};
use vliw_machine::MachineDesc;
use vliw_pipeline::{
    ablation, latency_sweep, render_ablation, run_corpus, PartitionerKind, PipelineConfig,
};

fn bench_ablations(c: &mut Criterion) {
    let corpus = full_corpus();
    println!(
        "\n{}",
        render_ablation(
            &ablation(&corpus, &MachineDesc::embedded(4, 4)),
            "Ablation A: partitioners on 4x4 embedded (full corpus)"
        )
    );
    println!(
        "\n{}",
        render_ablation(
            &latency_sweep(&corpus, 4),
            "Ablation B: copy latency on 4-cluster machines (full corpus)"
        )
    );

    let slice = corpus_slice(24);
    let machine = MachineDesc::embedded(4, 4);
    let mut g = c.benchmark_group("ablation_partitioners");
    for (name, kind) in [
        ("greedy", PartitionerKind::Greedy),
        ("bug", PartitionerKind::Bug),
        ("component", PartitionerKind::Component),
        ("round-robin", PartitionerKind::RoundRobin),
        ("iterated", PartitionerKind::Iterated(2, 4)),
    ] {
        let cfg = PipelineConfig {
            partitioner: kind,
            ..Default::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| run_corpus(&slice, &machine, cfg))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
