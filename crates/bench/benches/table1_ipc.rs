//! Table 1 — IPC of clustered software pipelines.
//!
//! Prints the reproduced table once, then measures regenerating the IPC
//! means for each machine model over a corpus slice.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vliw_bench::{corpus_slice, full_corpus};
use vliw_pipeline::{paper_machines, run_corpus, table1, PipelineConfig};

fn bench_table1(c: &mut Criterion) {
    // Reproduction record: the actual table on the full corpus.
    let cfg = PipelineConfig::default();
    println!("\n{}", table1(&full_corpus(), &cfg).render());
    println!("(paper: Ideal 8.6; Clustered 9.3/6.2, 8.4/7.5, 6.9/6.8)\n");

    let slice = corpus_slice(32);
    let mut g = c.benchmark_group("table1_ipc");
    for m in paper_machines() {
        g.bench_with_input(BenchmarkId::from_parameter(&m.name), &m, |b, m| {
            b.iter(|| {
                let rs = run_corpus(&slice, m, &cfg);
                rs.iter().map(|r| r.clustered_ipc).sum::<f64>() / rs.len() as f64
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
