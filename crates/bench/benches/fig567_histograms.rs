//! Figures 5–7 — per-loop degradation histograms for 2/4/8 clusters.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vliw_bench::{corpus_slice, full_corpus};
use vliw_pipeline::{fig_histogram, PipelineConfig};

fn bench_figs(c: &mut Criterion) {
    let cfg = PipelineConfig::default();
    let corpus = full_corpus();
    for (fig, n) in [(5, 2usize), (6, 4), (7, 8)] {
        let h = fig_histogram(&corpus, n, &cfg);
        println!("\nFigure {fig}:\n{}", h.render());
        println!(
            "zero-degradation: {:.1}% embedded / {:.1}% copy-unit",
            h.embedded.percent_undegraded(),
            h.copy_unit.percent_undegraded()
        );
    }

    let slice = corpus_slice(32);
    let mut g = c.benchmark_group("fig567_histograms");
    for n in [2usize, 4, 8] {
        g.bench_with_input(BenchmarkId::new("clusters", n), &n, |b, &n| {
            b.iter(|| fig_histogram(&slice, n, &cfg))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_figs);
criterion_main!(benches);
