//! Microbenchmarks of the hot kernels on representative loops.

use criterion::{criterion_group, criterion_main, Criterion};
use vliw_bench::{rep_ilp_loop, rep_recurrence_loop};
use vliw_core::{assign_banks_caps, build_rcg, insert_copies, PartitionConfig};
use vliw_ddg::{build_ddg, compute_slack, rec_ii, rec_ii_dense};
use vliw_machine::{ClusterId, MachineDesc};
use vliw_regalloc::allocate;
use vliw_sched::{schedule_loop, schedule_loop_with, ImsConfig, SchedContext, SchedProblem};
use vliw_sim::{check_equivalence, run_reference};

fn bench_micro(c: &mut Criterion) {
    let machine = MachineDesc::embedded(4, 4);
    let ideal_m = MachineDesc::monolithic(16);
    let cfg = PartitionConfig::default();
    let caps: Vec<usize> = machine.clusters.iter().map(|cl| cl.n_fus).collect();

    for (tag, body) in [("ilp", rep_ilp_loop()), ("rec", rep_recurrence_loop())] {
        let ddg = build_ddg(&body, &machine.latencies);
        let ideal = schedule_loop(
            &SchedProblem::ideal(&body, &ideal_m),
            &ddg,
            &ImsConfig::default(),
        )
        .unwrap();
        let slack = compute_slack(&ddg, |op| machine.latencies.of(body.op(op).opcode) as i64);
        let rcg = build_rcg(&body, &ideal, &slack, &cfg);
        let part = assign_banks_caps(&rcg, &caps, &cfg);
        let clustered = insert_copies(&body, &part);
        let cddg = build_ddg(&clustered.body, &machine.latencies);
        let problem = SchedProblem::clustered(&clustered.body, &machine, &clustered.cluster_of);
        let sched = schedule_loop(&problem, &cddg, &ImsConfig::default()).unwrap();

        c.bench_function(&format!("micro/{tag}/build_ddg"), |b| {
            b.iter(|| build_ddg(&body, &machine.latencies))
        });
        c.bench_function(&format!("micro/{tag}/rec_ii"), |b| b.iter(|| rec_ii(&ddg)));
        // The pre-refactor dense formulation, kept as the regression oracle:
        // the gap between these two is the O(V·E) vs O(n³) win.
        c.bench_function(&format!("micro/{tag}/rec_ii_dense"), |b| {
            b.iter(|| rec_ii_dense(&ddg))
        });
        let min_ii = rec_ii(&ddg);
        c.bench_function(&format!("micro/{tag}/is_feasible"), |b| {
            let mut scratch = Vec::new();
            b.iter(|| ddg.is_feasible_with(min_ii, &mut scratch))
        });
        c.bench_function(&format!("micro/{tag}/longest_paths"), |b| {
            b.iter(|| ddg.longest_paths(min_ii).is_some())
        });
        c.bench_function(&format!("micro/{tag}/ims_ideal"), |b| {
            b.iter(|| {
                schedule_loop(
                    &SchedProblem::ideal(&body, &ideal_m),
                    &ddg,
                    &ImsConfig::default(),
                )
                .unwrap()
            })
        });
        c.bench_function(&format!("micro/{tag}/build_rcg"), |b| {
            b.iter(|| build_rcg(&body, &ideal, &slack, &cfg))
        });
        c.bench_function(&format!("micro/{tag}/assign_banks"), |b| {
            b.iter(|| assign_banks_caps(&rcg, &caps, &cfg))
        });
        c.bench_function(&format!("micro/{tag}/insert_copies"), |b| {
            b.iter(|| insert_copies(&body, &part))
        });
        c.bench_function(&format!("micro/{tag}/ims_clustered"), |b| {
            b.iter(|| schedule_loop(&problem, &cddg, &ImsConfig::default()).unwrap())
        });
        // Context reuse: the same clustered schedule with RecII and slack
        // precomputed once — what partition search actually pays per probe.
        c.bench_function(&format!("micro/{tag}/ims_clustered_ctx"), |b| {
            let sctx = SchedContext::new(&problem, &cddg);
            b.iter(|| schedule_loop_with(&problem, &cddg, &ImsConfig::default(), &sctx).unwrap())
        });
        // Eviction hot path: every op pinned to one cluster forces the
        // scheduler through conflicts_into/evict repeatedly.
        c.bench_function(&format!("micro/{tag}/ims_eviction"), |b| {
            let pins = vec![ClusterId(0); body.n_ops()];
            let pinned = SchedProblem::clustered(&body, &machine, &pins);
            let sctx = SchedContext::new(&pinned, &ddg);
            b.iter(|| schedule_loop_with(&pinned, &ddg, &ImsConfig::default(), &sctx).unwrap())
        });
        c.bench_function(&format!("micro/{tag}/chaitin_briggs"), |b| {
            b.iter(|| {
                allocate(
                    &clustered.body,
                    &cddg,
                    &sched,
                    &clustered.vreg_bank,
                    &machine,
                )
            })
        });
        c.bench_function(&format!("micro/{tag}/simulate_oracle"), |b| {
            b.iter(|| check_equivalence(&clustered.body, &sched, &machine.latencies).unwrap())
        });
        c.bench_function(&format!("micro/{tag}/scalar_reference"), |b| {
            b.iter(|| run_reference(&body))
        });
    }
}

criterion_group!(benches, bench_micro);
criterion_main!(benches);
