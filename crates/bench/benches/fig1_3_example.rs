//! Figures 1–3 — the §4.2 xpos worked example.

use criterion::{criterion_group, criterion_main, Criterion};
use vliw_pipeline::paper_example;

fn bench_example(c: &mut Criterion) {
    let ex = paper_example();
    println!(
        "\nFigures 1-3: ideal span {} cycles (paper 7); partitioned span {} cycles, {} copies (paper 9, 2)\n",
        ex.ideal_span, ex.clustered_span, ex.n_copies
    );
    c.bench_function("fig1_3_example/full_pipeline", |b| b.iter(paper_example));
}

criterion_group!(benches, bench_example);
criterion_main!(benches);
