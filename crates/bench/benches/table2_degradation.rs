//! Table 2 — degradation over ideal schedules, normalised to 100.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vliw_bench::{corpus_slice, full_corpus};
use vliw_pipeline::{
    arith_mean, harmonic_mean, paper_machines, run_corpus, table2, PipelineConfig,
};

fn bench_table2(c: &mut Criterion) {
    let cfg = PipelineConfig::default();
    println!("\n{}", table2(&full_corpus(), &cfg).render());
    println!("(paper: arith 111/150, 126/122, 162/133; harm 109/127, 119/115, 138/124)\n");

    let slice = corpus_slice(32);
    let mut g = c.benchmark_group("table2_degradation");
    for m in paper_machines() {
        g.bench_with_input(BenchmarkId::from_parameter(&m.name), &m, |b, m| {
            b.iter(|| {
                let rs = run_corpus(&slice, m, &cfg);
                let norm: Vec<f64> = rs.iter().map(|r| r.normalized).collect();
                (arith_mean(&norm), harmonic_mean(&norm))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
