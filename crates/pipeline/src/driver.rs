//! The per-loop pipeline driver: §4's five steps plus validation.
//!
//! Between stages the driver runs the `vliw-analysis` lint registry over
//! whatever artifacts exist so far. In debug builds an Error-level finding
//! panics at the gate it was caught (the lint analogue of the surrounding
//! `debug_assert!`s); release builds collect everything into
//! [`LoopResult::diagnostics`] for the harness to aggregate.

use vliw_analysis::{Analyzer, Artifacts, Diagnostic, Report};
use vliw_core::{
    bug_partition, build_rcg, component_partition, insert_copies, round_robin_partition,
    LoopContext, Partition, PartitionConfig, RcgGraph,
};
use vliw_ddg::build_ddg;
use vliw_ddg::Ddg;
use vliw_ir::Loop;
use vliw_machine::{CopyModel, MachineDesc};
use vliw_regalloc::allocate;
use vliw_sched::{
    schedule_loop_with, sms_schedule_loop_with, verify_schedule, ImsConfig, SchedContext,
    SchedProblem, Schedule, SmsConfig,
};
use vliw_sim::equivalence_failures;

/// Which partitioner to run in step 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionerKind {
    /// The paper's greedy RCG heuristic (§5).
    Greedy,
    /// Greedy plus iterative refinement (§7 future work); fields are
    /// `(rounds, beam)`.
    Iterated(usize, usize),
    /// Ellis-style bottom-up greedy on the operation DAG.
    Bug,
    /// Positive-component packing only.
    Component,
    /// Round-robin.
    RoundRobin,
    /// Branch-and-bound over the RCG (`vliw-exact`), seeded with the greedy
    /// partition: provably optimal on small loops, anytime best-so-far on
    /// the rest. `budget_ms` caps the search wall-clock; `0` means
    /// unlimited.
    Exact {
        /// Search budget in milliseconds (`0` = run to proven optimality).
        budget_ms: u64,
    },
    /// Joint (II, slot, bank) constraint search (`vliw-joint`): branch-and-
    /// bound over bank assignments whose leaves run a complete fixed-II
    /// modulo scheduler, walking candidate IIs up from the machine lower
    /// bound. Returns the partition *and* a witness schedule the driver
    /// adopts directly; greedy seeds the incumbent so a budget-expired
    /// search degrades to the greedy pipeline with `optimal = false`.
    Joint {
        /// Search budget in milliseconds (`0` = run to proven optimality).
        budget_ms: u64,
    },
}

/// Which modulo scheduler produces the ideal and clustered schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Rau's iterative modulo scheduling — what the paper uses (§2).
    Ims,
    /// Llosa's swing modulo scheduling — what Nystrom & Eichenberger use
    /// (§6.3); lifetime-sensitive.
    Swing,
}

/// How the cross-stage lint gates behave.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LintMode {
    /// Run the lints; in debug builds panic at the first stage gate with an
    /// Error-level finding, in release builds just collect. The default.
    #[default]
    Gate,
    /// Run the lints and collect findings without ever panicking — what
    /// `vliw-lint` uses so a corrupted pipeline yields a report, not an
    /// abort.
    Collect,
    /// Skip static analysis entirely.
    Off,
}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Partitioner choice.
    pub partitioner: PartitionerKind,
    /// Scheduler choice.
    pub scheduler: SchedulerKind,
    /// RCG weight constants.
    pub partition: PartitionConfig,
    /// Scheduler knobs.
    pub ims: ImsConfig,
    /// Run the cycle-accurate simulator and compare against the scalar
    /// reference (strong but ~trip-count-proportional cost).
    pub simulate: bool,
    /// Additionally execute the final code on PHYSICAL registers (post-MVE
    /// renaming + Chaitin/Briggs assignment) and compare bit-for-bit.
    /// Implies `allocate`.
    pub simulate_physical: bool,
    /// Run Chaitin/Briggs per bank and record pressure/spills.
    pub allocate: bool,
    /// Cross-stage lint gating (see [`LintMode`]).
    pub lint: LintMode,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            partitioner: PartitionerKind::Greedy,
            scheduler: SchedulerKind::Ims,
            partition: PartitionConfig::default(),
            ims: ImsConfig::default(),
            simulate: false,
            simulate_physical: false,
            allocate: true,
            lint: LintMode::default(),
        }
    }
}

/// What the joint (II, slot, bank) solver claimed about its run. Present on
/// a [`LoopResult`] only when [`PartitionerKind::Joint`] ran; the claims are
/// re-audited by the `JNT001`–`JNT003` lint gate before the harness sees
/// them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JointOutcome {
    /// The II the solver achieved (its witness's II).
    pub ii: u32,
    /// The greedy partition-then-schedule II the search was seeded with.
    pub greedy_ii: u32,
    /// Certified lower bound: every II below this was proven infeasible.
    pub lower_bound_ii: u32,
    /// True when `ii` is provably minimal; false means the wall-clock
    /// budget truncated the search and `lower_bound_ii` is the honest gap.
    pub optimal: bool,
}

impl JointOutcome {
    /// Whether the budget cut the search off before the bound closed.
    pub fn truncated(&self) -> bool {
        !self.optimal
    }
}

/// What the exact bank-assignment solver claimed about its run. Present on
/// a [`LoopResult`] only when [`PartitionerKind::Exact`] ran.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExactOutcome {
    /// RCG cut cost of the partition the search returned.
    pub cost: f64,
    /// True when the branch-and-bound closed; false means the wall-clock
    /// budget or a governed resource budget truncated the search and the
    /// partition is the best incumbent (never worse than the greedy seed).
    pub optimal: bool,
}

impl ExactOutcome {
    /// Whether the budget cut the search off before it closed.
    pub fn truncated(&self) -> bool {
        !self.optimal
    }
}

/// Everything measured about one loop on one machine.
#[derive(Debug, Clone)]
pub struct LoopResult {
    /// Loop name.
    pub name: String,
    /// Original (pre-copy) operation count.
    pub n_ops: usize,
    /// II of the ideal monolithic schedule.
    pub ideal_ii: u32,
    /// II after partitioning, copy insertion and rescheduling.
    pub clustered_ii: u32,
    /// Kernel copies inserted.
    pub n_copies: usize,
    /// Hoisted (pre-loop) invariant copies.
    pub n_hoisted: usize,
    /// Ideal kernel IPC (`n_ops / ideal_ii`).
    pub ideal_ipc: f64,
    /// Clustered kernel IPC. Embedded model counts copies as issued
    /// operations; copy-unit does not (§6.2, Table 1).
    pub clustered_ipc: f64,
    /// Degradation normalised to 100 (`100·clustered_ii/ideal_ii`,
    /// Table 2's metric).
    pub normalized: f64,
    /// Spills during per-bank colouring (0 in every paper-scale run).
    pub spills: usize,
    /// MVE kernel unroll factor chosen by the allocator.
    pub mve_unroll: u32,
    /// Peak float-register pressure in the busiest bank (0 if allocation
    /// disabled) — the statistic swing scheduling exists to lower.
    pub peak_float_pressure: usize,
    /// Chaitin spill rounds taken before colouring succeeded (0 = first
    /// try; paper-scale banks never need any).
    pub spill_rounds: usize,
    /// `Some(true)` = simulated and bit-exact vs the scalar reference;
    /// `None` = simulation disabled.
    pub sim_ok: Option<bool>,
    /// Everything the cross-stage lints (and, when simulation ran, the
    /// dynamic oracle) found, in stage order. Empty under
    /// [`LintMode::Off`] and on a clean run.
    pub diagnostics: Vec<Diagnostic>,
    /// The joint solver's audited claims (`None` unless
    /// [`PartitionerKind::Joint`] ran).
    pub joint: Option<JointOutcome>,
    /// The exact partitioner's claims (`None` unless
    /// [`PartitionerKind::Exact`] ran). `optimal: false` marks a
    /// budget-truncated search.
    pub exact: Option<ExactOutcome>,
}

impl LoopResult {
    /// Whether any budgeted partitioner search was cut short — the result
    /// is the best incumbent found, not a proven optimum.
    pub fn partitioner_truncated(&self) -> bool {
        self.joint.is_some_and(|j| j.truncated()) || self.exact.is_some_and(|e| e.truncated())
    }
    /// Degradation as a percentage over ideal (0 = none).
    pub fn degradation_pct(&self) -> f64 {
        self.normalized - 100.0
    }
}

/// Schedule with the configured scheduler, falling back to IMS if swing
/// scheduling exhausts its II attempts (rare; keeps the harness total).
pub fn schedule_with(cfg: &PipelineConfig, problem: &SchedProblem<'_>, ddg: &Ddg) -> Schedule {
    let sctx = SchedContext::new(problem, ddg);
    schedule_with_ctx(cfg, problem, ddg, &sctx)
}

/// [`schedule_with`] against a precomputed [`SchedContext`] — the driver
/// builds the context once per (body, DDG) pair and both schedulers reuse
/// its RecII and slack.
pub fn schedule_with_ctx(
    cfg: &PipelineConfig,
    problem: &SchedProblem<'_>,
    ddg: &Ddg,
    sctx: &SchedContext,
) -> Schedule {
    match cfg.scheduler {
        SchedulerKind::Ims => {
            schedule_loop_with(problem, ddg, &cfg.ims, sctx).expect("IMS schedules")
        }
        SchedulerKind::Swing => sms_schedule_loop_with(problem, ddg, &SmsConfig::default(), sctx)
            .unwrap_or_else(|_| {
                schedule_loop_with(problem, ddg, &cfg.ims, sctx).expect("IMS fallback")
            }),
    }
}

/// Run a stage gate: in [`LintMode::Gate`] under debug assertions an
/// Error-level finding aborts right where it was caught; otherwise the
/// findings accumulate into `acc` for the caller to report.
fn gate(mode: LintMode, loop_name: &str, stage: &str, acc: &mut Report, found: Report) {
    if mode == LintMode::Gate && cfg!(debug_assertions) && found.has_errors() {
        panic!(
            "pipeline stage gate '{stage}' failed for loop '{loop_name}':\n{}",
            found.render_text()
        );
    }
    acc.merge(found);
}

/// Run the full pipeline for `body` on `machine`.
///
/// The ideal schedule is always produced on a monolithic machine of the same
/// issue width and latencies (§4.1's definition), regardless of `machine`'s
/// clustering.
pub fn run_loop(body: &Loop, machine: &MachineDesc, cfg: &PipelineConfig) -> LoopResult {
    run_loop_governed(body, machine, cfg, None)
}

/// [`run_loop`] under a server-granted [`vliw_governor::TrackedBudget`]:
/// the exact and joint partitioners charge their working sets against the
/// pool and poll the budget from their search loops, so a pool trip (or a
/// server-side cancel) degrades to the same anytime truncation as a
/// wall-clock deadline. The heuristic partitioners run unbudgeted — their
/// footprint is bounded and small.
pub fn run_loop_governed(
    body: &Loop,
    machine: &MachineDesc,
    cfg: &PipelineConfig,
    budget: Option<&vliw_governor::TrackedBudget>,
) -> LoopResult {
    // Steps 1–2: the shared per-loop front end — DDG, slack, RecII, and the
    // ideal schedule on the monolithic twin — built exactly once and reused
    // by every stage below (including the iterated partitioner's rounds).
    let ctx = LoopContext::with_scheduler(body, machine, |p, g, sctx| {
        let s = schedule_with_ctx(cfg, p, g, sctx);
        debug_assert!(verify_schedule(p, g, &s).is_ok());
        s
    });
    let LoopContext {
        ref slack,
        ref ideal,
        ..
    } = ctx;

    // Step 3: partition registers to banks. The RCG (when the partitioner
    // builds one) outlives the match so the gate below can lint it.
    let n_banks = machine.n_clusters();
    let mut rcg: Option<RcgGraph> = None;
    let mut joint: Option<vliw_joint::JointResult> = None;
    let mut exact: Option<ExactOutcome> = None;
    let partition: Partition = match cfg.partitioner {
        PartitionerKind::Greedy => {
            let g = rcg.insert(build_rcg(body, ideal, slack, &cfg.partition));
            let caps: Vec<usize> = machine.clusters.iter().map(|c| c.n_fus).collect();
            vliw_core::assign_banks_caps(g, &caps, &cfg.partition)
        }
        PartitionerKind::Iterated(rounds, beam) => {
            vliw_core::iterated_partition_ctx(body, machine, &cfg.partition, rounds, beam, &ctx)
                .partition
        }
        PartitionerKind::Bug => bug_partition(body, slack, machine),
        PartitionerKind::Component => {
            let g = rcg.insert(build_rcg(body, ideal, slack, &cfg.partition));
            component_partition(g, n_banks)
        }
        PartitionerKind::RoundRobin => round_robin_partition(body.n_vregs(), n_banks),
        PartitionerKind::Exact { budget_ms } => {
            let g = rcg.insert(build_rcg(body, ideal, slack, &cfg.partition));
            let caps: Vec<usize> = machine.clusters.iter().map(|c| c.n_fus).collect();
            let seed = vliw_core::assign_banks_caps(g, &caps, &cfg.partition);
            // Sequential on purpose: run_loop is routinely fanned out over
            // rayon corpus sweeps, and nested thread pools would multiply.
            let exact_cfg = vliw_exact::ExactConfig {
                budget_ms,
                ..Default::default()
            };
            let r = vliw_exact::solve_governed(g, n_banks, Some(&seed), &exact_cfg, budget);
            // The optimality claim rides the result so the serve tier can
            // tell a closed search from a budget-truncated incumbent (a
            // pool-tripped truncation must never be cached).
            exact = Some(ExactOutcome {
                cost: r.cost,
                optimal: r.optimal,
            });
            r.partition
        }
        PartitionerKind::Joint { budget_ms } => {
            // The RCG is rebuilt for the gate below; the solver derives its
            // own internally (it also needs the greedy incumbent). Runs
            // sequentially for the same nested-pool reason as Exact.
            rcg = Some(build_rcg(body, ideal, slack, &cfg.partition));
            let r = vliw_joint::solve_joint_governed(
                body,
                machine,
                &cfg.partition,
                &vliw_joint::JointConfig { budget_ms },
                budget,
            );
            let part = r.partition.clone();
            joint = Some(r);
            part
        }
    };

    let analyzer = Analyzer::with_default_passes();
    let mut diagnostics = Report::new();
    if cfg.lint != LintMode::Off {
        let mut actx = Artifacts::new(body, machine, &cfg.partition)
            .with_ideal(ideal, slack)
            .with_partition(&partition);
        if let Some(g) = &rcg {
            actx = actx.with_rcg(g);
        }
        gate(
            cfg.lint,
            &body.name,
            "partition",
            &mut diagnostics,
            analyzer.analyze(&actx),
        );
    }

    // Step 4: copies + clustered reschedule.
    let clustered = insert_copies(body, &partition);
    debug_assert!(clustered.all_operands_local());
    let mut work_body = clustered.body.clone();
    let mut work_cluster = clustered.cluster_of.clone();
    let mut work_banks = clustered.vreg_bank.clone();
    let mut cddg = build_ddg(&work_body, &machine.latencies);
    let mut sched = {
        let problem = SchedProblem::clustered(&work_body, machine, &work_cluster);
        // The joint solver already carries a schedule of exactly this
        // clustered body (copy insertion is deterministic in the partition).
        // Adopt it after re-verifying; any mismatch falls back to the
        // heuristic scheduler and the Joint lint gate reports the claim gap.
        let witness = joint.as_ref().and_then(|j| {
            (j.schedule.times.len() == work_body.n_ops()
                && verify_schedule(&problem, &cddg, &j.schedule).is_ok())
            .then(|| j.schedule.clone())
        });
        match witness {
            Some(s) => s,
            None => {
                let s = schedule_with(cfg, &problem, &cddg);
                debug_assert!(verify_schedule(&problem, &cddg, &s).is_ok());
                s
            }
        }
    };

    // Step 5: per-bank Chaitin/Briggs, with the classic build–colour–spill
    // loop: uncolourable values get spill code and the kernel is
    // rescheduled, until colouring succeeds or no candidate is spillable.
    let (spills, mve_unroll, peak_float_pressure, spill_rounds) = if cfg.allocate {
        let mut rounds = 0usize;
        // Chaitin's rule: ranges created BY spilling (reload temporaries and
        // once-spilled values) have infinite spill cost — re-spilling them
        // only thrashes. Everything at or above this index is off-limits.
        let spill_temp_floor = work_body.n_vregs();
        let mut already_spilled: Vec<vliw_ir::VReg> = Vec::new();
        loop {
            let alloc = allocate(&work_body, &cddg, &sched, &work_banks, machine);
            if alloc.total_spills() == 0 || rounds >= 8 {
                break (
                    alloc.total_spills(),
                    alloc.unroll,
                    alloc.peak_pressure(vliw_ir::RegClass::Float),
                    rounds,
                );
            }
            let mut victims: Vec<vliw_ir::VReg> = alloc
                .spilled
                .iter()
                .map(|&(v, _)| v)
                .filter(|&v| {
                    v.index() < spill_temp_floor
                        && !already_spilled.contains(&v)
                        && vliw_regalloc::spillable(&work_body, v)
                })
                .collect();
            victims.sort_unstable();
            victims.dedup();
            let Some(out) =
                vliw_regalloc::insert_spill_code(&work_body, &work_cluster, &work_banks, &victims)
            else {
                break (
                    alloc.total_spills(),
                    alloc.unroll,
                    alloc.peak_pressure(vliw_ir::RegClass::Float),
                    rounds,
                );
            };
            already_spilled.extend(out.spilled.iter().copied());
            work_body = out.body;
            work_cluster = out.cluster_of;
            work_banks = out.vreg_bank;
            cddg = build_ddg(&work_body, &machine.latencies);
            let problem = SchedProblem::clustered(&work_body, machine, &work_cluster);
            sched = schedule_with(cfg, &problem, &cddg);
            debug_assert!(verify_schedule(&problem, &cddg, &sched).is_ok());
            rounds += 1;
        }
    } else {
        (0, 0, 0, 0)
    };
    let clustered_final_body = work_body;
    let clustered_final_banks = work_banks;

    if cfg.lint != LintMode::Off {
        let mut actx = Artifacts::new(body, machine, &cfg.partition)
            .with_clustered(&clustered_final_body, &work_cluster, &clustered_final_banks)
            .with_cddg(&cddg)
            .with_schedule(&sched);
        if let (Some(j), 0) = (&joint, spill_rounds) {
            // The claim describes the unspilled clustered body; spill code
            // would change the op set the witness is checked against.
            actx = actx.with_joint(vliw_analysis::JointClaim {
                schedule: &j.schedule,
                claimed_ii: j.ii,
                greedy_ii: j.greedy_ii,
                lower_bound_ii: j.lower_bound_ii,
                optimal: j.optimal,
            });
        }
        let mut found = analyzer.analyze(&actx);
        if spills > 0 {
            // The allocator already reported this colouring as spilled
            // (`LoopResult::spills`); pressure above capacity is then the
            // recorded outcome, not a silent invariant violation, so the
            // gate must not abort on it.
            for d in found.diags.iter_mut() {
                if d.code == vliw_analysis::LintCode::Pres002 {
                    d.severity = vliw_analysis::Severity::Warn;
                }
            }
        }
        gate(
            cfg.lint,
            &body.name,
            "clustered-schedule",
            &mut diagnostics,
            found,
        );
    }

    let mut sim_ok = if cfg.simulate {
        let failures = equivalence_failures(&clustered_final_body, &sched, &machine.latencies);
        let ok = failures.is_empty();
        if cfg.lint != LintMode::Off {
            let mut found = Report::new();
            for e in &failures {
                found.push(vliw_analysis::equiv_diagnostic(e));
            }
            // NRM003 rides the simulate path: like the dynamic oracle its
            // cost scales with the trip count, so it is opt-in here rather
            // than part of the static registry.
            for d in vliw_analysis::canonical_semantics_diags(body) {
                found.push(d);
            }
            gate(cfg.lint, &body.name, "sim", &mut diagnostics, found);
        }
        Some(ok)
    } else {
        None
    };
    if cfg.simulate_physical && sim_ok != Some(false) {
        let alloc = allocate(
            &clustered_final_body,
            &cddg,
            &sched,
            &clustered_final_banks,
            machine,
        );
        let ok = if alloc.total_spills() == 0 {
            let bit_exact = vliw_sim::check_physical_equivalence(
                &clustered_final_body,
                &sched,
                &machine.latencies,
                &clustered_final_banks,
                &alloc,
            )
            .is_ok();
            if !bit_exact && cfg.lint != LintMode::Off {
                let mut found = Report::new();
                found.push(Diagnostic::new(
                    vliw_analysis::LintCode::Sim006,
                    vliw_analysis::Stage::Sim,
                    vliw_analysis::SourceLoc::default(),
                    "physical-register execution (post-MVE renaming + colouring) \
                     diverges from the scalar reference"
                        .into(),
                ));
                gate(
                    cfg.lint,
                    &body.name,
                    "sim-physical",
                    &mut diagnostics,
                    found,
                );
            }
            bit_exact
        } else {
            // Physical execution is only defined for a spill-free colouring;
            // an unconverged spill loop leaves the loop unverified (not
            // diverged), which `LoopResult::spills` already records.
            if cfg.lint != LintMode::Off {
                diagnostics.push(
                    Diagnostic::new(
                        vliw_analysis::LintCode::Sim006,
                        vliw_analysis::Stage::Sim,
                        vliw_analysis::SourceLoc::default(),
                        format!(
                            "physical-register verification skipped: colouring \
                             left {} value(s) spilled",
                            alloc.total_spills()
                        ),
                    )
                    .warning(),
                );
            }
            false
        };
        sim_ok = Some(sim_ok.unwrap_or(true) && ok);
    }

    let n_ops = body.n_ops();
    let counted = match machine.copy_model {
        CopyModel::Embedded => n_ops + clustered.n_kernel_copies,
        CopyModel::CopyUnit { .. } => n_ops,
    };

    LoopResult {
        name: body.name.clone(),
        n_ops,
        ideal_ii: ideal.ii,
        clustered_ii: sched.ii,
        n_copies: clustered.n_kernel_copies,
        n_hoisted: clustered.n_hoisted_copies,
        ideal_ipc: n_ops as f64 / ideal.ii as f64,
        clustered_ipc: counted as f64 / sched.ii as f64,
        normalized: 100.0 * sched.ii as f64 / ideal.ii as f64,
        spills,
        mve_unroll,
        peak_float_pressure,
        spill_rounds,
        sim_ok,
        diagnostics: diagnostics.diags,
        joint: joint.as_ref().map(|j| JointOutcome {
            ii: j.ii,
            greedy_ii: j.greedy_ii,
            lower_bound_ii: j.lower_bound_ii,
            optimal: j.optimal,
        }),
        exact,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_loopgen::Family;

    #[test]
    fn monolithic_machine_has_no_degradation() {
        let l = Family::Daxpy.build(0, 8, 48);
        let m = MachineDesc::monolithic(16);
        let r = run_loop(&l, &m, &PipelineConfig::default());
        assert_eq!(r.ideal_ii, r.clustered_ii);
        assert_eq!(r.n_copies, 0);
        assert_eq!(r.normalized, 100.0);
        assert_eq!(r.spills, 0);
    }

    #[test]
    fn clustered_run_validates_end_to_end() {
        let l = Family::Daxpy.build(0, 8, 48);
        let m = MachineDesc::embedded(4, 4);
        let cfg = PipelineConfig {
            simulate: true,
            ..Default::default()
        };
        let r = run_loop(&l, &m, &cfg);
        assert_eq!(r.sim_ok, Some(true));
        assert!(r.clustered_ii >= r.ideal_ii);
        assert!(r.normalized >= 100.0);
    }

    #[test]
    fn all_partitioners_produce_valid_pipelines() {
        let l = Family::Stencil.build(1, 3, 40);
        let m = MachineDesc::copy_unit(4, 4);
        for kind in [
            PartitionerKind::Greedy,
            PartitionerKind::Bug,
            PartitionerKind::Component,
            PartitionerKind::RoundRobin,
            PartitionerKind::Iterated(2, 4),
            PartitionerKind::Exact { budget_ms: 2000 },
            PartitionerKind::Joint { budget_ms: 4000 },
        ] {
            let cfg = PipelineConfig {
                partitioner: kind,
                simulate: true,
                ..Default::default()
            };
            let r = run_loop(&l, &m, &cfg);
            assert_eq!(r.sim_ok, Some(true), "{kind:?} broke semantics");
        }
    }

    #[test]
    fn round_robin_needs_more_copies_than_greedy() {
        let l = Family::Daxpy.build(0, 8, 48);
        let m = MachineDesc::embedded(4, 4);
        let greedy = run_loop(&l, &m, &PipelineConfig::default());
        let rr = run_loop(
            &l,
            &m,
            &PipelineConfig {
                partitioner: PartitionerKind::RoundRobin,
                ..Default::default()
            },
        );
        assert!(
            rr.n_copies > greedy.n_copies,
            "round-robin {} vs greedy {}",
            rr.n_copies,
            greedy.n_copies
        );
    }
}
