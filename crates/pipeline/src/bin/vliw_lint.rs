//! `vliw-lint` — run the full cross-stage static analysis (plus the dynamic
//! equivalence oracle) over generated loop families and report findings.
//!
//! ```text
//! vliw-lint [--json] [--families daxpy,dot,...] [--variants N] [--machines all|embedded|copyunit]
//! ```
//!
//! Every loop runs through the complete §4 pipeline with lint gating in
//! collect mode, so a corrupted stage produces a report instead of an
//! abort. Exit status: 0 clean (warnings allowed), 1 usage error, 2 when
//! any Error-level diagnostic fired.

use vliw_loopgen::Family;
use vliw_machine::MachineDesc;
use vliw_pipeline::{run_loop, DiagSummary, LintMode, PipelineConfig};

struct Options {
    json: bool,
    families: Vec<Family>,
    variants: usize,
    machines: Vec<MachineDesc>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        json: false,
        families: Family::ALL.to_vec(),
        variants: 2,
        machines: Vec::new(),
    };
    let mut machines_arg = String::from("all");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--families" => {
                let list = args
                    .next()
                    .ok_or("--families needs a comma-separated list")?;
                opts.families = list
                    .split(',')
                    .map(|name| {
                        Family::ALL
                            .into_iter()
                            .find(|f| f.name().eq_ignore_ascii_case(name.trim()))
                            .ok_or_else(|| format!("unknown family '{name}'"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--variants" => {
                opts.variants = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--variants needs a positive integer")?;
            }
            "--machines" => {
                machines_arg = args
                    .next()
                    .ok_or("--machines needs all|embedded|copyunit")?;
            }
            "--help" | "-h" => {
                return Err(String::new());
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    opts.machines = match machines_arg.as_str() {
        "all" => MachineDesc::paper_models(true)
            .into_iter()
            .chain(MachineDesc::paper_models(false))
            .collect(),
        "embedded" => MachineDesc::paper_models(true),
        "copyunit" => MachineDesc::paper_models(false),
        other => return Err(format!("unknown machine set '{other}'")),
    };
    Ok(opts)
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("vliw-lint: {msg}");
            }
            eprintln!(
                "usage: vliw-lint [--json] [--families daxpy,dot,...] \
                 [--variants N] [--machines all|embedded|copyunit]"
            );
            std::process::exit(if msg.is_empty() { 0 } else { 1 });
        }
    };

    // Full pipeline, full checking, never abort: static lints at every
    // stage gate plus the simulation oracle, collected per loop.
    let cfg = PipelineConfig {
        simulate: true,
        lint: LintMode::Collect,
        ..Default::default()
    };

    let mut results = Vec::new();
    let mut n_loops = 0usize;
    for machine in &opts.machines {
        for &family in &opts.families {
            for idx in 0..opts.variants {
                // Unroll 1–4 and trip counts big enough to exercise the
                // prelude/kernel/postlude structure.
                let unroll = 1 + idx % 4;
                let body = family.build(idx, unroll, 32 + 8 * idx as u32);
                let r = run_loop(&body, machine, &cfg);
                n_loops += 1;
                if !r.diagnostics.is_empty() {
                    if opts.json {
                        for d in &r.diagnostics {
                            println!("{}", d.render_json());
                        }
                    } else {
                        for d in &r.diagnostics {
                            println!("{} [{} on {}]", d.render_text(), r.name, machine.name);
                        }
                    }
                }
                results.push(r);
            }
        }
    }

    let summary = DiagSummary::from_results(&results);
    if opts.json {
        let by_code: Vec<String> = summary
            .by_code
            .iter()
            .map(|(c, n)| format!("\"{c}\":{n}"))
            .collect();
        println!(
            "{{\"loops\":{n_loops},\"errors\":{},\"warnings\":{},\"notes\":{},\"by_code\":{{{}}}}}",
            summary.errors,
            summary.warns,
            summary.infos,
            by_code.join(",")
        );
    } else {
        println!(
            "linted {n_loops} loop(s) across {} machine model(s), {} famil(ies)",
            opts.machines.len(),
            opts.families.len()
        );
        print!("{}", summary.render());
    }
    if summary.errors > 0 {
        std::process::exit(2);
    }
}
