//! `vliw-lint` — run the full cross-stage static analysis (plus the dynamic
//! equivalence oracle) over generated loop families and report findings.
//!
//! ```text
//! vliw-lint [--json] [--families daxpy,dot,...] [--variants N] [--machines all|embedded|copyunit]
//! vliw-lint --canon [--json] [--families daxpy,dot,...] [--variants N]
//! ```
//!
//! Every loop runs through the complete §4 pipeline with lint gating in
//! collect mode, so a corrupted stage produces a report instead of an
//! abort. Exit status: 0 clean (warnings allowed), 1 usage error, 2 when
//! any Error-level diagnostic fired.
//!
//! `--canon` switches to the alpha-canonicalization audit: instead of the
//! pipeline, each loop is canonicalized and checked for idempotence
//! (`NRM001`), hash/equivalence agreement over generated isomorphic
//! variants and a perturbed negative (`NRM002`), and semantics
//! preservation under the scalar reference (`NRM003`); loops are then
//! grouped into equivalence classes by structural hash, and any
//! same-hash pair must prove equivalence with a checkable witness.

use vliw_loopgen::Family;
use vliw_machine::MachineDesc;
use vliw_pipeline::{run_loop, DiagSummary, LintMode, PipelineConfig};

struct Options {
    json: bool,
    canon: bool,
    families: Vec<Family>,
    variants: usize,
    machines: Vec<MachineDesc>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        json: false,
        canon: false,
        families: Family::ALL.to_vec(),
        variants: 2,
        machines: Vec::new(),
    };
    let mut machines_arg = String::from("all");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--canon" => opts.canon = true,
            "--families" => {
                let list = args
                    .next()
                    .ok_or("--families needs a comma-separated list")?;
                opts.families = list
                    .split(',')
                    .map(|name| {
                        Family::ALL
                            .into_iter()
                            .find(|f| f.name().eq_ignore_ascii_case(name.trim()))
                            .ok_or_else(|| format!("unknown family '{name}'"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--variants" => {
                opts.variants = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--variants needs a positive integer")?;
            }
            "--machines" => {
                machines_arg = args
                    .next()
                    .ok_or("--machines needs all|embedded|copyunit")?;
            }
            "--help" | "-h" => {
                return Err(String::new());
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    opts.machines = match machines_arg.as_str() {
        "all" => MachineDesc::paper_models(true)
            .into_iter()
            .chain(MachineDesc::paper_models(false))
            .collect(),
        "embedded" => MachineDesc::paper_models(true),
        "copyunit" => MachineDesc::paper_models(false),
        other => return Err(format!("unknown machine set '{other}'")),
    };
    Ok(opts)
}

/// The `--canon` audit: canonicalization invariants over the loop corpus,
/// no machine model involved. Returns the number of Error-level findings.
fn run_canon(opts: &Options) -> usize {
    use std::collections::BTreeMap;
    use vliw_analysis::canonical_semantics_diags;
    use vliw_normal::{
        alpha_equivalent, canonicalize, check_witness, perturb, structural_hash, variant,
    };

    let mut loops = Vec::new();
    for &family in &opts.families {
        for idx in 0..opts.variants {
            let unroll = 1 + idx % 4;
            loops.push(family.build(idx, unroll, 32 + 8 * idx as u32));
        }
    }

    let mut errors = Vec::new();
    let mut n_variant_checks = 0usize;
    let mut by_hash: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (idx, l) in loops.iter().enumerate() {
        let c = canonicalize(l);
        by_hash.entry(c.hash.hex()).or_default().push(idx);

        let again = canonicalize(&c.body);
        if again.body != c.body || again.hash != c.hash {
            errors.push(format!(
                "NRM001 {}: canonical form is not a fixed point",
                l.name
            ));
        }
        for seed in [3u64, 41, 271] {
            n_variant_checks += 1;
            let v = variant(l, seed.wrapping_add(idx as u64 * 7));
            if structural_hash(&v) != c.hash {
                errors.push(format!(
                    "NRM002 {}: isomorphic variant (seed {seed}) changed the hash",
                    l.name
                ));
            } else {
                match alpha_equivalent(l, &v) {
                    None => errors.push(format!(
                        "NRM002 {}: variant shares the hash but no witness found",
                        l.name
                    )),
                    Some(w) => {
                        if let Err(e) = check_witness(l, &v, &w) {
                            errors.push(format!("NRM002 {}: bad witness: {e}", l.name));
                        }
                    }
                }
            }
        }
        if let Some(p) = perturb(l, idx as u64) {
            if structural_hash(&p) == c.hash {
                errors.push(format!(
                    "NRM002 {}: perturbed loop collides with its original",
                    l.name
                ));
            }
        }
        for d in canonical_semantics_diags(l) {
            errors.push(format!("{} [{}]", d.render_text(), l.name));
        }
    }
    // Cross-class soundness: any same-hash pair must prove equivalence.
    for members in by_hash.values().filter(|v| v.len() > 1) {
        for w in members.windows(2) {
            let (a, b) = (&loops[w[0]], &loops[w[1]]);
            if alpha_equivalent(a, b).is_none() {
                errors.push(format!(
                    "NRM002: hash collision between non-equivalent '{}' and '{}'",
                    a.name, b.name
                ));
            }
        }
    }

    let n_classes = by_hash.len();
    if opts.json {
        let errs: Vec<String> = errors
            .iter()
            .map(|e| format!("\"{}\"", e.replace('\\', "\\\\").replace('"', "\\\"")))
            .collect();
        println!(
            "{{\"loops\":{},\"classes\":{n_classes},\"variant_checks\":{n_variant_checks},\
             \"errors\":{},\"error_list\":[{}]}}",
            loops.len(),
            errors.len(),
            errs.join(",")
        );
    } else {
        for e in &errors {
            println!("{e}");
        }
        println!(
            "canon audit: {} loop(s) in {n_classes} equivalence class(es), \
             {n_variant_checks} variant check(s), {} error(s)",
            loops.len(),
            errors.len()
        );
        for (h, members) in by_hash.iter().filter(|(_, m)| m.len() > 1) {
            let names: Vec<&str> = members.iter().map(|&i| loops[i].name.as_str()).collect();
            println!("  class {h}: {}", names.join(", "));
        }
    }
    errors.len()
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("vliw-lint: {msg}");
            }
            eprintln!(
                "usage: vliw-lint [--canon] [--json] [--families daxpy,dot,...] \
                 [--variants N] [--machines all|embedded|copyunit]"
            );
            std::process::exit(if msg.is_empty() { 0 } else { 1 });
        }
    };

    if opts.canon {
        let errors = run_canon(&opts);
        std::process::exit(if errors > 0 { 2 } else { 0 });
    }

    // Full pipeline, full checking, never abort: static lints at every
    // stage gate plus the simulation oracle, collected per loop.
    let cfg = PipelineConfig {
        simulate: true,
        lint: LintMode::Collect,
        ..Default::default()
    };

    let mut results = Vec::new();
    let mut n_loops = 0usize;
    for machine in &opts.machines {
        for &family in &opts.families {
            for idx in 0..opts.variants {
                // Unroll 1–4 and trip counts big enough to exercise the
                // prelude/kernel/postlude structure.
                let unroll = 1 + idx % 4;
                let body = family.build(idx, unroll, 32 + 8 * idx as u32);
                let r = run_loop(&body, machine, &cfg);
                n_loops += 1;
                if !r.diagnostics.is_empty() {
                    if opts.json {
                        for d in &r.diagnostics {
                            println!("{}", d.render_json());
                        }
                    } else {
                        for d in &r.diagnostics {
                            println!("{} [{} on {}]", d.render_text(), r.name, machine.name);
                        }
                    }
                }
                results.push(r);
            }
        }
    }

    let summary = DiagSummary::from_results(&results);
    if opts.json {
        let by_code: Vec<String> = summary
            .by_code
            .iter()
            .map(|(c, n)| format!("\"{c}\":{n}"))
            .collect();
        println!(
            "{{\"loops\":{n_loops},\"errors\":{},\"warnings\":{},\"notes\":{},\"by_code\":{{{}}}}}",
            summary.errors,
            summary.warns,
            summary.infos,
            by_code.join(",")
        );
    } else {
        println!(
            "linted {n_loops} loop(s) across {} machine model(s), {} famil(ies)",
            opts.machines.len(),
            opts.families.len()
        );
        print!("{}", summary.render());
    }
    if summary.errors > 0 {
        std::process::exit(2);
    }
}
