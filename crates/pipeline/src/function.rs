//! Whole-function partitioning — the paper's claimed generality (§6.3, §7):
//! "our greedy partitioning method is easily applicable to entire programs,
//! since we could easily use both non-loop and loop code to build our
//! register component graph and our greedy method works on a function
//! basis."
//!
//! Each block is scheduled ideally on the monolithic twin (modulo
//! scheduling for loop blocks, list scheduling for straight-line blocks),
//! contributes its RCG — with the nesting-depth weighting of §5 giving
//! inner loops the louder voice — and a **single** bank assignment is made
//! for the function's shared register namespace. Every block is then
//! copy-rewritten and rescheduled under that one partition.

use crate::driver::PipelineConfig;
use vliw_core::{assign_banks_pinned, build_rcg, insert_copies, RcgGraph};
use vliw_ddg::{build_ddg, compute_slack};
use vliw_ir::Function;
use vliw_machine::MachineDesc;
use vliw_sched::{list_schedule, schedule_loop, verify_schedule, SchedProblem, Schedule};

/// Per-block outcome within a function run.
#[derive(Debug, Clone)]
pub struct BlockResult {
    /// Block name.
    pub name: String,
    /// Is this block software-pipelined (trip > 1)?
    pub pipelined: bool,
    /// Ideal schedule length: II for pipelined blocks, span for blocks.
    pub ideal_len: u32,
    /// Clustered schedule length under the function-wide partition.
    pub clustered_len: u32,
    /// Kernel copies this block needed.
    pub n_copies: usize,
    /// Static execution-frequency weight (`10^(depth-1)`, the classic
    /// profile-free estimate).
    pub freq: f64,
}

impl BlockResult {
    /// Degradation normalised to 100.
    pub fn normalized(&self) -> f64 {
        100.0 * self.clustered_len as f64 / self.ideal_len as f64
    }
}

/// Function-level result.
#[derive(Debug, Clone)]
pub struct FunctionResult {
    /// Per-block outcomes.
    pub blocks: Vec<BlockResult>,
    /// Frequency-weighted mean normalised degradation.
    pub weighted_normalized: f64,
    /// Total kernel copies across blocks.
    pub total_copies: usize,
}

fn schedule_block(
    body: &vliw_ir::Loop,
    problem: &SchedProblem<'_>,
    ddg: &vliw_ddg::Ddg,
    cfg: &PipelineConfig,
) -> Schedule {
    if body.trip_count > 1 {
        schedule_loop(problem, ddg, &cfg.ims).expect("modulo schedule")
    } else {
        list_schedule(problem, ddg)
    }
}

fn block_len(body: &vliw_ir::Loop, machine: &MachineDesc, s: &Schedule) -> u32 {
    if body.trip_count > 1 {
        s.ii
    } else {
        s.iteration_span(body, machine).max(1) as u32
    }
}

/// Partition and schedule an entire function on `machine`.
pub fn run_function(
    func: &Function,
    machine: &MachineDesc,
    cfg: &PipelineConfig,
) -> FunctionResult {
    assert!(!func.blocks.is_empty());
    debug_assert!(func.verify().is_ok());
    let ideal_machine =
        MachineDesc::monolithic(machine.issue_width()).with_latencies(machine.latencies.clone());
    let n_vregs = func.n_vregs();

    // Per-block ideal schedules + merged RCG over the shared namespace.
    let mut merged = RcgGraph::new(n_vregs);
    let mut ideals = Vec::with_capacity(func.blocks.len());
    for body in &func.blocks {
        let ddg = build_ddg(body, &machine.latencies);
        let problem = SchedProblem::ideal(body, &ideal_machine);
        let ideal = schedule_block(body, &problem, &ddg, cfg);
        let slack = compute_slack(&ddg, |op| machine.latencies.of(body.op(op).opcode) as i64);
        merged.merge(&build_rcg(body, &ideal, &slack, &cfg.partition));
        ideals.push((ddg, ideal));
    }

    // One bank assignment for the whole function.
    let caps: Vec<usize> = machine.clusters.iter().map(|c| c.n_fus).collect();
    let part = assign_banks_pinned(&merged, &caps, &vec![None; n_vregs], &cfg.partition);

    // Rewrite and reschedule every block under it.
    let mut blocks = Vec::with_capacity(func.blocks.len());
    let mut total_copies = 0usize;
    for (body, (_, ideal)) in func.blocks.iter().zip(&ideals) {
        let clustered = insert_copies(body, &part);
        debug_assert!(clustered.all_operands_local());
        let cddg = build_ddg(&clustered.body, &machine.latencies);
        let problem = SchedProblem::clustered(&clustered.body, machine, &clustered.cluster_of);
        let sched = schedule_block(&clustered.body, &problem, &cddg, cfg);
        debug_assert!(verify_schedule(&problem, &cddg, &sched).is_ok());
        total_copies += clustered.n_kernel_copies;
        blocks.push(BlockResult {
            name: body.name.clone(),
            pipelined: body.trip_count > 1,
            ideal_len: block_len(body, machine, ideal),
            clustered_len: block_len(&clustered.body, machine, &sched),
            n_copies: clustered.n_kernel_copies,
            freq: 10f64.powi(body.nesting_depth.saturating_sub(1) as i32),
        });
    }

    let wsum: f64 = blocks.iter().map(|b| b.freq).sum();
    let weighted_normalized =
        blocks.iter().map(|b| b.freq * b.normalized()).sum::<f64>() / wsum.max(1.0);
    FunctionResult {
        blocks,
        weighted_normalized,
        total_copies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ir::{FunctionBuilder, RegClass};

    fn sample_function() -> Function {
        let mut f = FunctionBuilder::new("f");
        let a = f.live_in_float_val("a", 2.0);
        let x = f.array("x", RegClass::Float, 512);
        let y = f.array("y", RegClass::Float, 512);
        f.block("prologue", 1, 1, |b| {
            let c = b.fconst_new(3.0);
            let d = b.fmul(a, c);
            b.store(x, 0, 0, d);
        });
        f.block("hot_loop", 2, 64, |b| {
            for j in 0..4i64 {
                let xv = b.load(x, j, 4);
                let yv = b.load(y, j, 4);
                let p = b.fmul(a, xv);
                let s = b.fadd(yv, p);
                b.store(y, j, 4, s);
            }
        });
        f.block("cold_loop", 1, 8, |b| {
            let v = b.load(y, 1, 2);
            let w = b.fmul(a, v);
            b.store(x, 1, 2, w);
        });
        f.finish()
    }

    #[test]
    fn function_runs_on_clustered_machine() {
        let func = sample_function();
        let m = MachineDesc::embedded(4, 4);
        let r = run_function(&func, &m, &PipelineConfig::default());
        assert_eq!(r.blocks.len(), 3);
        assert!(r.weighted_normalized >= 100.0);
        for b in &r.blocks {
            assert!(b.clustered_len >= b.ideal_len, "{}", b.name);
        }
        // The inner loop dominates the weighting.
        assert!(r.blocks[1].freq > r.blocks[0].freq);
    }

    #[test]
    fn function_on_monolithic_machine_is_free() {
        let func = sample_function();
        let m = MachineDesc::monolithic(16);
        let r = run_function(&func, &m, &PipelineConfig::default());
        assert_eq!(r.total_copies, 0);
        assert!((r.weighted_normalized - 100.0).abs() < 1e-9);
    }

    #[test]
    fn shared_invariant_is_partitioned_once() {
        // `a` is used in every block; the function-wide partition gives it
        // exactly one bank, so at most (n_clusters − 1) hoisted copies exist
        // per block and no kernel copies are needed for it in blocks where
        // its consumers share its bank.
        let func = sample_function();
        let m = MachineDesc::embedded(2, 8);
        let r = run_function(&func, &m, &PipelineConfig::default());
        // Invariant copies are hoisted; kernel copies only for loop-variant
        // cross-bank values.
        assert!(
            r.total_copies <= 6,
            "unexpectedly many copies: {}",
            r.total_copies
        );
    }
}
