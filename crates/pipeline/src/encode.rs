//! Canonical text encoding of [`PipelineConfig`].
//!
//! The compile service keys its cache on a content hash over the canonical
//! request encoding (loop text + machine text + config text), so the full
//! heuristic configuration needs a deterministic, round-trippable text form.
//! One item per line:
//!
//! ```text
//! partitioner greedy            ; or bug | component | round-robin | iterated R B | exact MS
//! scheduler ims                 ; or swing
//! partition crit=4.0 repulse=0.5 balance=0.6 depth_base=2.0
//! ims budget_ratio=12 max_ii_tries=48
//! simulate false
//! simulate_physical false
//! allocate true
//! lint gate                     ; or collect | off
//! ```
//!
//! `parse_pipeline_config(format_pipeline_config(c)) == c` and the rendered
//! form is a fixed point under re-parsing.

use crate::driver::{LintMode, PartitionerKind, PipelineConfig, SchedulerKind};
use std::fmt::Write as _;
use vliw_core::PartitionConfig;
use vliw_sched::ImsConfig;

/// A pipeline-config parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigParseError {
    /// 1-based line of the offending text.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ConfigParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigParseError {}

fn err(line: usize, message: impl Into<String>) -> ConfigParseError {
    ConfigParseError {
        line,
        message: message.into(),
    }
}

/// Render `cfg` in the canonical text form accepted by
/// [`parse_pipeline_config`].
pub fn format_pipeline_config(cfg: &PipelineConfig) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "partitioner {}",
        match cfg.partitioner {
            PartitionerKind::Greedy => "greedy".to_string(),
            PartitionerKind::Iterated(r, b) => format!("iterated {r} {b}"),
            PartitionerKind::Bug => "bug".to_string(),
            PartitionerKind::Component => "component".to_string(),
            PartitionerKind::RoundRobin => "round-robin".to_string(),
            PartitionerKind::Exact { budget_ms } => format!("exact {budget_ms}"),
            PartitionerKind::Joint { budget_ms } => format!("joint {budget_ms}"),
        }
    );
    let _ = writeln!(
        s,
        "scheduler {}",
        match cfg.scheduler {
            SchedulerKind::Ims => "ims",
            SchedulerKind::Swing => "swing",
        }
    );
    let _ = writeln!(s, "partition {}", cfg.partition.canonical_text());
    let _ = writeln!(
        s,
        "ims budget_ratio={} max_ii_tries={}",
        cfg.ims.budget_ratio, cfg.ims.max_ii_tries
    );
    let _ = writeln!(s, "simulate {}", cfg.simulate);
    let _ = writeln!(s, "simulate_physical {}", cfg.simulate_physical);
    let _ = writeln!(s, "allocate {}", cfg.allocate);
    let _ = writeln!(
        s,
        "lint {}",
        match cfg.lint {
            LintMode::Gate => "gate",
            LintMode::Collect => "collect",
            LintMode::Off => "off",
        }
    );
    s
}

fn parse_bool(tok: &str, line: usize) -> Result<bool, ConfigParseError> {
    match tok {
        "true" => Ok(true),
        "false" => Ok(false),
        other => Err(err(line, format!("expected true|false, got `{other}`"))),
    }
}

/// Parse the canonical text form produced by [`format_pipeline_config`].
/// Missing lines keep their [`PipelineConfig::default`] values.
pub fn parse_pipeline_config(text: &str) -> Result<PipelineConfig, ConfigParseError> {
    let mut cfg = PipelineConfig::default();
    for (ln, raw) in text.lines().enumerate() {
        let line = ln + 1;
        let code = raw.split(';').next().unwrap_or("").trim();
        if code.is_empty() {
            continue;
        }
        let (key, rest) = code.split_once(' ').unwrap_or((code, ""));
        let rest = rest.trim();
        match key {
            "partitioner" => {
                let toks: Vec<&str> = rest.split_whitespace().collect();
                cfg.partitioner = match toks.as_slice() {
                    ["greedy"] => PartitionerKind::Greedy,
                    ["bug"] => PartitionerKind::Bug,
                    ["component"] => PartitionerKind::Component,
                    ["round-robin"] => PartitionerKind::RoundRobin,
                    ["iterated", r, b] => PartitionerKind::Iterated(
                        r.parse().map_err(|_| err(line, "bad iterated rounds"))?,
                        b.parse().map_err(|_| err(line, "bad iterated beam"))?,
                    ),
                    ["exact", ms] => PartitionerKind::Exact {
                        budget_ms: ms.parse().map_err(|_| err(line, "bad exact budget"))?,
                    },
                    ["joint", ms] => PartitionerKind::Joint {
                        budget_ms: ms.parse().map_err(|_| err(line, "bad joint budget"))?,
                    },
                    _ => return Err(err(line, format!("unknown partitioner `{rest}`"))),
                };
            }
            "scheduler" => {
                cfg.scheduler = match rest {
                    "ims" => SchedulerKind::Ims,
                    "swing" => SchedulerKind::Swing,
                    other => return Err(err(line, format!("unknown scheduler `{other}`"))),
                };
            }
            "partition" => {
                cfg.partition = PartitionConfig::parse_canonical(rest).map_err(|m| err(line, m))?;
            }
            "ims" => {
                let mut ims = ImsConfig::default();
                for kv in rest.split_whitespace() {
                    let (k, v) = kv
                        .split_once('=')
                        .ok_or_else(|| err(line, format!("ims item `{kv}` is not key=value")))?;
                    let v: u32 = v
                        .parse()
                        .map_err(|_| err(line, format!("bad value in `{kv}`")))?;
                    match k {
                        "budget_ratio" => ims.budget_ratio = v,
                        "max_ii_tries" => ims.max_ii_tries = v,
                        other => return Err(err(line, format!("unknown ims key `{other}`"))),
                    }
                }
                cfg.ims = ims;
            }
            "simulate" => cfg.simulate = parse_bool(rest, line)?,
            "simulate_physical" => cfg.simulate_physical = parse_bool(rest, line)?,
            "allocate" => cfg.allocate = parse_bool(rest, line)?,
            "lint" => {
                cfg.lint = match rest {
                    "gate" => LintMode::Gate,
                    "collect" => LintMode::Collect,
                    "off" => LintMode::Off,
                    other => return Err(err(line, format!("unknown lint mode `{other}`"))),
                };
            }
            other => return Err(err(line, format!("unrecognised config line `{other}`"))),
        }
    }
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_round_trip(cfg: &PipelineConfig) {
        let text = format_pipeline_config(cfg);
        let back = parse_pipeline_config(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(back.partitioner, cfg.partitioner);
        assert_eq!(back.scheduler, cfg.scheduler);
        assert_eq!(back.partition, cfg.partition);
        assert_eq!(back.ims.budget_ratio, cfg.ims.budget_ratio);
        assert_eq!(back.ims.max_ii_tries, cfg.ims.max_ii_tries);
        assert_eq!(back.simulate, cfg.simulate);
        assert_eq!(back.simulate_physical, cfg.simulate_physical);
        assert_eq!(back.allocate, cfg.allocate);
        assert_eq!(back.lint, cfg.lint);
        assert_eq!(format_pipeline_config(&back), text, "not a fixed point");
    }

    #[test]
    fn round_trips_default_and_variants() {
        assert_round_trip(&PipelineConfig::default());
        assert_round_trip(&PipelineConfig {
            partitioner: PartitionerKind::Iterated(4, 8),
            scheduler: SchedulerKind::Swing,
            partition: vliw_core::PartitionConfig::no_balance(),
            ims: ImsConfig {
                budget_ratio: 7,
                max_ii_tries: 9,
            },
            simulate: true,
            simulate_physical: true,
            allocate: false,
            lint: LintMode::Collect,
        });
        for p in [
            PartitionerKind::Bug,
            PartitionerKind::Component,
            PartitionerKind::RoundRobin,
        ] {
            assert_round_trip(&PipelineConfig {
                partitioner: p,
                ..Default::default()
            });
        }
    }

    /// A strategy over EVERY `PartitionerKind` variant. The inner match is
    /// deliberately non-wildcard: adding a variant without extending this
    /// strategy (and the canonical encode/parse above) is a compile error
    /// here, not a silently-broken cache key in vliw-serve.
    fn any_partitioner() -> impl proptest::prelude::Strategy<Value = PartitionerKind> {
        use proptest::prelude::*;
        #[allow(dead_code)]
        fn exhaustiveness_guard(k: PartitionerKind) {
            match k {
                PartitionerKind::Greedy
                | PartitionerKind::Bug
                | PartitionerKind::Component
                | PartitionerKind::RoundRobin
                | PartitionerKind::Iterated(_, _)
                | PartitionerKind::Exact { .. }
                | PartitionerKind::Joint { .. } => {}
            }
        }
        prop_oneof![
            Just(PartitionerKind::Greedy),
            Just(PartitionerKind::Bug),
            Just(PartitionerKind::Component),
            Just(PartitionerKind::RoundRobin),
            (0usize..64, 0usize..64).prop_map(|(r, b)| PartitionerKind::Iterated(r, b)),
            (0u64..1_000_000).prop_map(|budget_ms| PartitionerKind::Exact { budget_ms }),
            (0u64..1_000_000).prop_map(|budget_ms| PartitionerKind::Joint { budget_ms }),
        ]
    }

    proptest::proptest! {
        /// Satellite: encode → parse → encode is a fixpoint for every
        /// partitioner variant, so the serve cache keys stay faithful.
        #[test]
        fn partitioner_round_trip_is_exhaustive(p in any_partitioner()) {
            let cfg = PipelineConfig {
                partitioner: p,
                ..Default::default()
            };
            let text = format_pipeline_config(&cfg);
            let back = parse_pipeline_config(&text)
                .map_err(|e| proptest::test_runner::TestCaseError::fail(e.to_string()))?;
            proptest::prop_assert_eq!(back.partitioner, p);
            proptest::prop_assert_eq!(format_pipeline_config(&back), text);
        }
    }

    #[test]
    fn round_trips_exact_variant() {
        for budget_ms in [0u64, 1, 2000, u64::MAX] {
            assert_round_trip(&PipelineConfig {
                partitioner: PartitionerKind::Exact { budget_ms },
                ..Default::default()
            });
        }
    }

    #[test]
    fn round_trips_joint_variant() {
        for budget_ms in [0u64, 1, 2000, u64::MAX] {
            assert_round_trip(&PipelineConfig {
                partitioner: PartitionerKind::Joint { budget_ms },
                ..Default::default()
            });
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_pipeline_config("partitioner frobnicate").is_err());
        assert!(parse_pipeline_config("scheduler frobnicate").is_err());
        assert!(parse_pipeline_config("lint frobnicate").is_err());
        assert!(parse_pipeline_config("nonsense").is_err());
        assert!(parse_pipeline_config("ims budget_ratio=x").is_err());
    }

    #[test]
    fn missing_lines_fall_back_to_defaults() {
        let cfg = parse_pipeline_config("scheduler swing\n").unwrap();
        assert_eq!(cfg.scheduler, SchedulerKind::Swing);
        assert_eq!(cfg.partitioner, PartitionerKind::Greedy);
        assert!(cfg.allocate);
    }
}
