//! # vliw-pipeline — end-to-end driver and experiment harness
//!
//! Glues the substrates into the paper's five-step flow (§4) and regenerates
//! every table and figure of the evaluation (§6):
//!
//! * [`driver::run_loop`] — ideal schedule → RCG partition → copy insertion →
//!   clustered reschedule → per-bank colouring → simulation oracle, for one
//!   loop on one machine;
//! * [`stats`] — arithmetic/harmonic means and the degradation histogram
//!   buckets of Figures 5–7;
//! * [`experiments`] — Table 1 (IPC), Table 2 (normalised degradation),
//!   Figures 5–7 (degradation histograms), the partitioner ablation, the
//!   copy-latency sweep, and the iterated-greedy extension;
//! * the `repro` binary prints any of them as ASCII tables.
//!
//! Corpus evaluation is embarrassingly parallel across loops and uses rayon.

#![warn(missing_docs)]

pub mod driver;
pub mod encode;
pub mod experiments;
pub mod function;
pub mod stats;

pub use driver::{
    run_loop, run_loop_governed, schedule_with, schedule_with_ctx, ExactOutcome, JointOutcome,
    LintMode, LoopResult, PartitionerKind, PipelineConfig, SchedulerKind,
};
pub use encode::{format_pipeline_config, parse_pipeline_config, ConfigParseError};
pub use experiments::{
    ablation, aggregate_gap_row, fig_histogram, fig_histogram_with, gap_table, gap_table_with,
    joint_gap_table, joint_gap_table_with, joint_scaling_table, joint_scaling_table_with,
    latency_sweep, paper_example, paper_machines, render_ablation, render_scheduler_compare,
    run_corpus, run_corpus_grid, run_corpus_grid_with, scheduler_compare, table1, table1_with,
    table2, table2_with, whole_programs, AblationRow, GapObs, GapRow, GapTable, HistogramRow,
    JointGapRow, JointGapTable, LoopRunner, PaperExample, SchedulerRow, SolveOutcome, Table1,
    Table2,
};
pub use function::{run_function, BlockResult, FunctionResult};
pub use stats::DiagSummary;
pub use stats::{arith_mean, degradation_bucket, harmonic_mean, Histogram, BUCKET_LABELS};
