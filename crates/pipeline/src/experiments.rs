//! Reproduction of every table and figure in §6, plus ablations.

use crate::driver::{run_loop, LoopResult, PartitionerKind, PipelineConfig};
use crate::stats::{arith_mean, harmonic_mean, Histogram, BUCKET_LABELS};
use rayon::prelude::*;
use std::fmt::Write as _;
use vliw_ir::{Loop, LoopBuilder, RegClass};
use vliw_machine::{LatencyTable, MachineDesc};

/// All six clustered 16-wide models of §6.1, embedded first:
/// 2×8, 4×4, 8×2 for each copy model.
pub fn paper_machines() -> Vec<MachineDesc> {
    let mut v = MachineDesc::paper_models(true);
    v.extend(MachineDesc::paper_models(false));
    v
}

/// A pluggable per-loop compile function: the experiment harness calls this
/// for every `(loop, machine, config)` triple. The plain entry points pass
/// [`run_loop`]; `vliw-serve` injects its content-cached runner so corpus
/// sweeps become warm-cache incremental.
pub trait LoopRunner: Sync {
    /// Compile `body` for `machine` under `cfg`.
    fn run(&self, body: &Loop, machine: &MachineDesc, cfg: &PipelineConfig) -> LoopResult;
}

impl<F> LoopRunner for F
where
    F: Fn(&Loop, &MachineDesc, &PipelineConfig) -> LoopResult + Sync,
{
    fn run(&self, body: &Loop, machine: &MachineDesc, cfg: &PipelineConfig) -> LoopResult {
        self(body, machine, cfg)
    }
}

/// Run the whole corpus against every machine (rayon-parallel over loops).
pub fn run_corpus(corpus: &[Loop], machine: &MachineDesc, cfg: &PipelineConfig) -> Vec<LoopResult> {
    corpus
        .par_iter()
        .map(|l| run_loop(l, machine, cfg))
        .collect()
}

/// Run the corpus against several machines as ONE flat parallel sweep over
/// every `(machine, loop)` pair, regrouped per machine in input order.
///
/// Sweeping machine-by-machine leaves cores idle at the tail of each
/// machine's corpus (a handful of expensive loops finish last while the next
/// machine waits); flattening the grid gives the work distributor
/// `machines × loops` items to balance instead of `loops`.
pub fn run_corpus_grid(
    corpus: &[Loop],
    machines: &[MachineDesc],
    cfg: &PipelineConfig,
) -> Vec<Vec<LoopResult>> {
    run_corpus_grid_with(corpus, machines, cfg, &run_loop)
}

/// [`run_corpus_grid`] with an injected per-loop runner (see [`LoopRunner`]).
pub fn run_corpus_grid_with(
    corpus: &[Loop],
    machines: &[MachineDesc],
    cfg: &PipelineConfig,
    runner: &dyn LoopRunner,
) -> Vec<Vec<LoopResult>> {
    let pairs: Vec<(&MachineDesc, &Loop)> = machines
        .iter()
        .flat_map(|m| corpus.iter().map(move |l| (m, l)))
        .collect();
    let flat: Vec<LoopResult> = pairs
        .par_iter()
        .map(|&(m, l)| runner.run(l, m, cfg))
        .collect();
    flat.chunks(corpus.len().max(1))
        .map(|c| c.to_vec())
        .collect()
}

/// Table 1: kernel IPC of the ideal and clustered pipelines.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// Mean ideal IPC (the "Ideal 8.6" row).
    pub ideal_ipc: f64,
    /// `(machine name, clusters, embedded?, mean clustered IPC)`.
    pub rows: Vec<(String, usize, bool, f64)>,
}

impl Table1 {
    /// Render in the paper's layout.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "Table 1. IPC of Clustered Software Pipelines");
        let _ = writeln!(
            s,
            "{:<10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "Model", "2cl-Emb", "2cl-Copy", "4cl-Emb", "4cl-Copy", "8cl-Emb", "8cl-Copy"
        );
        let _ = writeln!(
            s,
            "{:<10} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
            "Ideal",
            self.ideal_ipc,
            self.ideal_ipc,
            self.ideal_ipc,
            self.ideal_ipc,
            self.ideal_ipc,
            self.ideal_ipc
        );
        let find = |cl: usize, emb: bool| {
            self.rows
                .iter()
                .find(|r| r.1 == cl && r.2 == emb)
                .map_or(f64::NAN, |r| r.3)
        };
        let _ = writeln!(
            s,
            "{:<10} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
            "Clustered",
            find(2, true),
            find(2, false),
            find(4, true),
            find(4, false),
            find(8, true),
            find(8, false)
        );
        s
    }
}

/// Compute Table 1 from per-machine corpus results.
pub fn table1(corpus: &[Loop], cfg: &PipelineConfig) -> Table1 {
    table1_with(corpus, cfg, &run_loop)
}

/// [`table1`] with an injected per-loop runner.
pub fn table1_with(corpus: &[Loop], cfg: &PipelineConfig, runner: &dyn LoopRunner) -> Table1 {
    let machines = paper_machines();
    let per_machine = run_corpus_grid_with(corpus, &machines, cfg, runner);
    let mut rows = Vec::new();
    let mut ideal = f64::NAN;
    for (m, rs) in machines.iter().zip(&per_machine) {
        if ideal.is_nan() {
            ideal = arith_mean(&rs.iter().map(|r| r.ideal_ipc).collect::<Vec<_>>());
        }
        let ipc = arith_mean(&rs.iter().map(|r| r.clustered_ipc).collect::<Vec<_>>());
        rows.push((
            m.name.clone(),
            m.n_clusters(),
            m.copy_model.is_embedded(),
            ipc,
        ));
    }
    Table1 {
        ideal_ipc: ideal,
        rows,
    }
}

/// Table 2: degradation over ideal schedules, normalised to 100.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// `(machine name, clusters, embedded?, arithmetic mean, harmonic mean)`.
    pub rows: Vec<(String, usize, bool, f64, f64)>,
}

impl Table2 {
    /// Render in the paper's layout.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "Table 2. Degradation Over Ideal Schedules — Normalized");
        let _ = writeln!(
            s,
            "{:<16} {:>8} {:>9} {:>8} {:>9} {:>8} {:>9}",
            "Average", "2cl-Emb", "2cl-Copy", "4cl-Emb", "4cl-Copy", "8cl-Emb", "8cl-Copy"
        );
        let find = |cl: usize, emb: bool| {
            self.rows
                .iter()
                .find(|r| r.1 == cl && r.2 == emb)
                .map_or((f64::NAN, f64::NAN), |r| (r.3, r.4))
        };
        for (label, pick) in [("Arithmetic Mean", 0usize), ("Harmonic Mean", 1)] {
            let cells: Vec<f64> = [
                (2, true),
                (2, false),
                (4, true),
                (4, false),
                (8, true),
                (8, false),
            ]
            .into_iter()
            .map(|(c, e)| {
                let (a, h) = find(c, e);
                if pick == 0 {
                    a
                } else {
                    h
                }
            })
            .collect();
            let _ = writeln!(
                s,
                "{:<16} {:>8.0} {:>9.0} {:>8.0} {:>9.0} {:>8.0} {:>9.0}",
                label, cells[0], cells[1], cells[2], cells[3], cells[4], cells[5]
            );
        }
        s
    }
}

/// Compute Table 2.
pub fn table2(corpus: &[Loop], cfg: &PipelineConfig) -> Table2 {
    table2_with(corpus, cfg, &run_loop)
}

/// [`table2`] with an injected per-loop runner.
pub fn table2_with(corpus: &[Loop], cfg: &PipelineConfig, runner: &dyn LoopRunner) -> Table2 {
    let machines = paper_machines();
    let per_machine = run_corpus_grid_with(corpus, &machines, cfg, runner);
    let rows = machines
        .iter()
        .zip(&per_machine)
        .map(|(m, rs)| {
            let norm: Vec<f64> = rs.iter().map(|r| r.normalized).collect();
            (
                m.name.clone(),
                m.n_clusters(),
                m.copy_model.is_embedded(),
                arith_mean(&norm),
                harmonic_mean(&norm),
            )
        })
        .collect();
    Table2 { rows }
}

/// One histogram figure (Fig. 5, 6 or 7): embedded and copy-unit histograms
/// for a given cluster count.
#[derive(Debug, Clone)]
pub struct HistogramRow {
    /// Cluster count (2, 4 or 8).
    pub n_clusters: usize,
    /// Embedded-model histogram.
    pub embedded: Histogram,
    /// Copy-unit-model histogram.
    pub copy_unit: Histogram,
}

impl HistogramRow {
    /// Render as the figures' bucket table.
    pub fn render(&self) -> String {
        let fus = 16 / self.n_clusters;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "Achieved II on {} Clusters with {} Units Each (percent of loops)",
            self.n_clusters, fus
        );
        let _ = writeln!(s, "{:<10} {:>9} {:>9}", "Bucket", "Embedded", "CopyUnit");
        for (i, label) in BUCKET_LABELS.iter().enumerate() {
            let _ = writeln!(
                s,
                "{:<10} {:>8.1}% {:>8.1}%",
                label,
                self.embedded.percent(i),
                self.copy_unit.percent(i)
            );
        }
        s
    }
}

/// Compute Fig. 5 (`n_clusters = 2`), Fig. 6 (4) or Fig. 7 (8).
pub fn fig_histogram(corpus: &[Loop], n_clusters: usize, cfg: &PipelineConfig) -> HistogramRow {
    fig_histogram_with(corpus, n_clusters, cfg, &run_loop)
}

/// [`fig_histogram`] with an injected per-loop runner.
pub fn fig_histogram_with(
    corpus: &[Loop],
    n_clusters: usize,
    cfg: &PipelineConfig,
    runner: &dyn LoopRunner,
) -> HistogramRow {
    let fus = 16 / n_clusters;
    let machines = [
        MachineDesc::embedded(n_clusters, fus),
        MachineDesc::copy_unit(n_clusters, fus),
    ];
    let per_machine = run_corpus_grid_with(corpus, &machines, cfg, runner);
    let hist = |rs: &[LoopResult]| {
        Histogram::from_degradations(&rs.iter().map(|r| r.degradation_pct()).collect::<Vec<_>>())
    };
    HistogramRow {
        n_clusters,
        embedded: hist(&per_machine[0]),
        copy_unit: hist(&per_machine[1]),
    }
}

/// One row of the partitioner ablation.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Partitioner label.
    pub name: String,
    /// Arithmetic-mean normalised degradation.
    pub arith: f64,
    /// Harmonic-mean normalised degradation.
    pub harmonic: f64,
    /// Percent of loops with zero degradation.
    pub pct_zero: f64,
    /// Mean kernel copies per loop.
    pub mean_copies: f64,
}

/// Ablation A: compare partitioners (plus the no-balance / no-repulsion
/// configs of the greedy heuristic) on one machine.
pub fn ablation(corpus: &[Loop], machine: &MachineDesc) -> Vec<AblationRow> {
    let variants: Vec<(&str, PipelineConfig)> = vec![
        ("greedy-rcg", PipelineConfig::default()),
        (
            "greedy-no-balance",
            PipelineConfig {
                partition: vliw_core::PartitionConfig::no_balance(),
                ..Default::default()
            },
        ),
        (
            "greedy-no-repulsion",
            PipelineConfig {
                partition: vliw_core::PartitionConfig::no_repulsion(),
                ..Default::default()
            },
        ),
        (
            "bug-opdag",
            PipelineConfig {
                partitioner: PartitionerKind::Bug,
                ..Default::default()
            },
        ),
        (
            "component",
            PipelineConfig {
                partitioner: PartitionerKind::Component,
                ..Default::default()
            },
        ),
        (
            "round-robin",
            PipelineConfig {
                partitioner: PartitionerKind::RoundRobin,
                ..Default::default()
            },
        ),
        (
            "iterated(4,8)",
            PipelineConfig {
                partitioner: PartitionerKind::Iterated(4, 8),
                ..Default::default()
            },
        ),
        (
            // Anytime budget per loop: small loops close optimally, large
            // ones return the greedy seed improved as far as the budget
            // allowed — so this row lower-bounds what optimal partitioning
            // could buy end-to-end.
            "exact(200ms)",
            PipelineConfig {
                partitioner: PartitionerKind::Exact { budget_ms: 200 },
                ..Default::default()
            },
        ),
    ];
    variants
        .into_iter()
        .map(|(name, cfg)| {
            let rs = run_corpus(corpus, machine, &cfg);
            summarise(name, &rs)
        })
        .collect()
}

fn summarise(name: &str, rs: &[LoopResult]) -> AblationRow {
    let norm: Vec<f64> = rs.iter().map(|r| r.normalized).collect();
    let hist =
        Histogram::from_degradations(&rs.iter().map(|r| r.degradation_pct()).collect::<Vec<_>>());
    AblationRow {
        name: name.to_string(),
        arith: arith_mean(&norm),
        harmonic: harmonic_mean(&norm),
        pct_zero: hist.percent_undegraded(),
        mean_copies: arith_mean(&rs.iter().map(|r| r.n_copies as f64).collect::<Vec<_>>()),
    }
}

/// Render ablation rows as a table.
pub fn render_ablation(rows: &[AblationRow], title: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{title}");
    let _ = writeln!(
        s,
        "{:<20} {:>8} {:>8} {:>8} {:>8}",
        "Partitioner", "Arith", "Harm", "0%-degr", "Copies"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<20} {:>8.1} {:>8.1} {:>7.1}% {:>8.2}",
            r.name, r.arith, r.harmonic, r.pct_zero, r.mean_copies
        );
    }
    s
}

/// How one budgeted exact solve ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveOutcome {
    /// The search closed: the reported cost is proven optimal.
    Closed,
    /// The per-loop deadline expired first: the reported cost is only the
    /// best incumbent and proves nothing about the greedy seed.
    BudgetExceeded,
}

/// One loop's observation feeding a [`GapRow`] — public so the aggregation
/// ([`aggregate_gap_row`]) is testable without running any solver.
#[derive(Debug, Clone)]
pub struct GapObs {
    /// RCG objective of the greedy partition.
    pub greedy_cost: f64,
    /// RCG objective of the budgeted branch-and-bound (incumbent on
    /// timeout).
    pub exact_cost: f64,
    /// Whether the solve closed or hit its per-loop budget.
    pub outcome: SolveOutcome,
    /// Branch-and-bound tree nodes expanded.
    pub nodes: u64,
    /// Kernel copies under the greedy partitioner (full pipeline).
    pub greedy_copies: usize,
    /// Kernel copies under the exact partitioner (full pipeline).
    pub exact_copies: usize,
    /// Normalised II under greedy (100 = ideal).
    pub greedy_norm: f64,
    /// Normalised II under exact (100 = ideal).
    pub exact_norm: f64,
}

/// One machine model's row of the greedy-vs-optimal gap table.
#[derive(Debug, Clone)]
pub struct GapRow {
    /// Machine name.
    pub machine: String,
    /// Loops evaluated (the small-loop slice of the corpus).
    pub n_loops: usize,
    /// Loops where the branch-and-bound closed, i.e. proved optimality.
    pub n_optimal: usize,
    /// Loops where the per-loop budget expired before the search closed
    /// (`n_optimal + n_budget_exceeded == n_loops`).
    pub n_budget_exceeded: usize,
    /// Loops where the search closed AND the greedy partition already
    /// achieves the optimal RCG objective (within 1e-9). A timed-out solve
    /// never counts: its incumbent equals the greedy seed by construction,
    /// which proves nothing.
    pub n_greedy_optimal: usize,
    /// Mean RCG objective of the greedy partition.
    pub mean_greedy_cost: f64,
    /// Mean RCG objective of the exact partition.
    pub mean_exact_cost: f64,
    /// Greedy's excess objective over optimal as a percent of the greedy
    /// total (`100·(Σgreedy − Σexact)/Σgreedy`; 0 = greedy optimal
    /// everywhere).
    pub cost_excess_pct: f64,
    /// Mean kernel copies under the greedy partitioner (full pipeline).
    pub mean_greedy_copies: f64,
    /// Mean kernel copies under the exact partitioner (full pipeline).
    pub mean_exact_copies: f64,
    /// Mean normalised II under greedy (100 = ideal).
    pub mean_greedy_norm: f64,
    /// Mean normalised II under exact (100 = ideal).
    pub mean_exact_norm: f64,
    /// Branch-and-bound tree nodes expanded across the slice.
    pub nodes_expanded: u64,
}

/// The optimality-gap experiment: greedy vs branch-and-bound, per machine.
#[derive(Debug, Clone)]
pub struct GapTable {
    /// Per-loop search budget used, in milliseconds.
    pub budget_ms: u64,
    /// Register-count ceiling of the corpus slice.
    pub max_regs: usize,
    /// One row per machine model.
    pub rows: Vec<GapRow>,
}

impl GapTable {
    /// True iff the search closed on every loop of every row.
    pub fn all_optimal(&self) -> bool {
        self.rows.iter().all(|r| r.n_optimal == r.n_loops)
    }

    /// True iff the exact objective never exceeds the greedy objective
    /// (guaranteed by construction — the search is seeded with greedy —
    /// so a `false` here means the solver is broken).
    pub fn exact_le_greedy(&self) -> bool {
        self.rows
            .iter()
            .all(|r| r.mean_exact_cost <= r.mean_greedy_cost + 1e-9)
    }

    /// Render as the EXPERIMENTS.md table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "Optimality gap: greedy vs branch-and-bound (loops with ≤{} vregs, budget {} ms)",
            self.max_regs, self.budget_ms
        );
        let _ = writeln!(
            s,
            "{:<10} {:>5} {:>6} {:>9} {:>9} {:>9} {:>8} {:>11} {:>11}",
            "Model",
            "Loops",
            "Opt%",
            "Grdy-opt%",
            "Cost-grdy",
            "Cost-opt",
            "Excess%",
            "Copies g/e",
            "NormII g/e"
        );
        for r in &self.rows {
            let pct = |n: usize| 100.0 * n as f64 / r.n_loops.max(1) as f64;
            let _ = writeln!(
                s,
                "{:<10} {:>5} {:>5.0}% {:>8.0}% {:>9.2} {:>9.2} {:>7.1}% {:>5.2}/{:<5.2} {:>5.1}/{:<5.1}",
                r.machine,
                r.n_loops,
                pct(r.n_optimal),
                pct(r.n_greedy_optimal),
                r.mean_greedy_cost,
                r.mean_exact_cost,
                r.cost_excess_pct,
                r.mean_greedy_copies,
                r.mean_exact_copies,
                r.mean_greedy_norm,
                r.mean_exact_norm
            );
        }
        let _ = writeln!(
            s,
            "all_optimal={} exact<=greedy={} budget_exceeded={}",
            self.all_optimal(),
            self.exact_le_greedy(),
            self.rows.iter().map(|r| r.n_budget_exceeded).sum::<usize>()
        );
        s
    }
}

/// Fold one machine's per-loop observations into its [`GapRow`]. Split out
/// of [`gap_table_with`] so the budget semantics — a timed-out solve is
/// `BudgetExceeded`, never silently "greedy was optimal" — are pinned by a
/// deterministic test.
pub fn aggregate_gap_row(machine: &str, outs: &[GapObs]) -> GapRow {
    let n = outs.len();
    let sum_greedy: f64 = outs.iter().map(|o| o.greedy_cost).sum();
    let sum_exact: f64 = outs.iter().map(|o| o.exact_cost).sum();
    GapRow {
        machine: machine.to_string(),
        n_loops: n,
        n_optimal: outs
            .iter()
            .filter(|o| o.outcome == SolveOutcome::Closed)
            .count(),
        n_budget_exceeded: outs
            .iter()
            .filter(|o| o.outcome == SolveOutcome::BudgetExceeded)
            .count(),
        n_greedy_optimal: outs
            .iter()
            .filter(|o| o.outcome == SolveOutcome::Closed && o.greedy_cost <= o.exact_cost + 1e-9)
            .count(),
        mean_greedy_cost: sum_greedy / n.max(1) as f64,
        mean_exact_cost: sum_exact / n.max(1) as f64,
        cost_excess_pct: if sum_greedy > 0.0 {
            100.0 * (sum_greedy - sum_exact) / sum_greedy
        } else {
            0.0
        },
        mean_greedy_copies: arith_mean(
            &outs
                .iter()
                .map(|o| o.greedy_copies as f64)
                .collect::<Vec<_>>(),
        ),
        mean_exact_copies: arith_mean(
            &outs
                .iter()
                .map(|o| o.exact_copies as f64)
                .collect::<Vec<_>>(),
        ),
        mean_greedy_norm: arith_mean(&outs.iter().map(|o| o.greedy_norm).collect::<Vec<_>>()),
        mean_exact_norm: arith_mean(&outs.iter().map(|o| o.exact_norm).collect::<Vec<_>>()),
        nodes_expanded: outs.iter().map(|o| o.nodes).sum(),
    }
}

/// Compute the gap table over the paper's six machine models.
pub fn gap_table(corpus: &[Loop], budget_ms: u64, max_regs: usize) -> GapTable {
    gap_table_with(corpus, &paper_machines(), budget_ms, max_regs, &run_loop)
}

/// [`gap_table`] with explicit machines and an injected runner for the two
/// full-pipeline passes (the RCG-objective comparison always runs in
/// process — it needs the graph, not just the [`LoopResult`]).
pub fn gap_table_with(
    corpus: &[Loop],
    machines: &[MachineDesc],
    budget_ms: u64,
    max_regs: usize,
    runner: &dyn LoopRunner,
) -> GapTable {
    let small: Vec<&Loop> = corpus.iter().filter(|l| l.n_vregs() <= max_regs).collect();
    let pairs: Vec<(&MachineDesc, &Loop)> = machines
        .iter()
        .flat_map(|m| small.iter().map(move |&l| (m, l)))
        .collect();
    let flat: Vec<GapObs> = pairs
        .par_iter()
        .map(|&(m, l)| {
            let part_cfg = vliw_core::PartitionConfig::default();
            let ctx = vliw_core::LoopContext::new(l, m);
            let g = vliw_core::build_rcg(l, &ctx.ideal, &ctx.slack, &part_cfg);
            let caps: Vec<usize> = m.clusters.iter().map(|c| c.n_fus).collect();
            let greedy = vliw_core::assign_banks_caps(&g, &caps, &part_cfg);
            let greedy_cost = vliw_exact::partition_cost(&g, &greedy, 0.0);
            let exact = vliw_exact::solve(
                &g,
                m.n_clusters(),
                Some(&greedy),
                &vliw_exact::ExactConfig {
                    budget_ms,
                    ..Default::default()
                },
            );
            let rg = runner.run(l, m, &PipelineConfig::default());
            let re = runner.run(
                l,
                m,
                &PipelineConfig {
                    partitioner: PartitionerKind::Exact { budget_ms },
                    ..Default::default()
                },
            );
            GapObs {
                greedy_cost,
                exact_cost: exact.cost,
                outcome: if exact.optimal {
                    SolveOutcome::Closed
                } else {
                    SolveOutcome::BudgetExceeded
                },
                nodes: exact.stats.nodes_expanded,
                greedy_copies: rg.n_copies,
                exact_copies: re.n_copies,
                greedy_norm: rg.normalized,
                exact_norm: re.normalized,
            }
        })
        .collect();

    let rows = machines
        .iter()
        .zip(flat.chunks(small.len().max(1)))
        .map(|(m, outs)| aggregate_gap_row(&m.name, outs))
        .collect();

    GapTable {
        budget_ms,
        max_regs,
        rows,
    }
}

/// One machine model's row of the joint (II, slot, bank) gap experiment.
#[derive(Debug, Clone)]
pub struct JointGapRow {
    /// Machine name.
    pub machine: String,
    /// Loops evaluated (the small-loop slice of the corpus).
    pub n_loops: usize,
    /// Loops where the joint search closed, i.e. proved its II optimal.
    pub n_closed: usize,
    /// Loops where the per-loop budget truncated the search
    /// (`n_closed + n_budget_exceeded == n_loops`).
    pub n_budget_exceeded: usize,
    /// Loops where the joint solver beat greedy by at least one full II.
    pub n_joint_wins: usize,
    /// Loops where the joint II exceeds the greedy II — impossible by
    /// construction (the search is seeded with the greedy schedule), so
    /// anything non-zero means the solver is broken.
    pub n_joint_regressions: usize,
    /// Mean II of the greedy partition + IMS pipeline.
    pub mean_greedy_ii: f64,
    /// Mean II of the joint solver (incumbent on timeout).
    pub mean_joint_ii: f64,
    /// Bank-assignment search nodes expanded across the slice.
    pub bank_nodes: u64,
    /// Fixed-II residue-search nodes expanded across the slice.
    pub sched_nodes: u64,
    /// Propagator invocations (capacity + recurrence + q-system checks).
    pub propagations: u64,
}

/// The joint-solver experiment: greedy (partition, then schedule) vs the
/// joint (II, slot, bank) branch-and-bound, per machine model.
#[derive(Debug, Clone)]
pub struct JointGapTable {
    /// Per-loop search budget used, in milliseconds (`0` = unlimited).
    pub budget_ms: u64,
    /// Register-count ceiling of the corpus slice.
    pub max_regs: usize,
    /// One row per machine model.
    pub rows: Vec<JointGapRow>,
}

impl JointGapTable {
    /// True iff the joint search closed on every loop of every row.
    pub fn all_closed(&self) -> bool {
        self.rows.iter().all(|r| r.n_closed == r.n_loops)
    }

    /// True iff the joint II never exceeds the greedy II anywhere.
    pub fn joint_le_greedy(&self) -> bool {
        self.rows.iter().all(|r| r.n_joint_regressions == 0)
    }

    /// Loops, across all rows, where the joint solver beat greedy by ≥1
    /// full II.
    pub fn n_joint_wins(&self) -> usize {
        self.rows.iter().map(|r| r.n_joint_wins).sum()
    }

    /// Render as the EXPERIMENTS.md table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "Joint (II, slot, bank) solver vs greedy pipeline (loops with ≤{} vregs, budget {} ms)",
            self.max_regs, self.budget_ms
        );
        let _ = writeln!(
            s,
            "{:<10} {:>5} {:>7} {:>5} {:>5} {:>8} {:>8} {:>10} {:>10} {:>11}",
            "Model",
            "Loops",
            "Closed%",
            "Bdgt",
            "Wins",
            "II-grdy",
            "II-jnt",
            "BankNodes",
            "SchedNodes",
            "Propagations"
        );
        for r in &self.rows {
            let _ = writeln!(
                s,
                "{:<10} {:>5} {:>6.0}% {:>5} {:>5} {:>8.2} {:>8.2} {:>10} {:>10} {:>11}",
                r.machine,
                r.n_loops,
                100.0 * r.n_closed as f64 / r.n_loops.max(1) as f64,
                r.n_budget_exceeded,
                r.n_joint_wins,
                r.mean_greedy_ii,
                r.mean_joint_ii,
                r.bank_nodes,
                r.sched_nodes,
                r.propagations
            );
        }
        let _ = writeln!(
            s,
            "all_closed={} joint_ii<=greedy_ii={} joint_wins_ge1={}",
            self.all_closed(),
            self.joint_le_greedy(),
            self.n_joint_wins()
        );
        s
    }
}

/// Compute the joint-gap table over the paper's six machine models.
pub fn joint_gap_table(corpus: &[Loop], budget_ms: u64, max_regs: usize) -> JointGapTable {
    joint_gap_table_with(corpus, &paper_machines(), budget_ms, max_regs)
}

/// [`joint_gap_table`] with explicit machines. Each `(machine, loop)` pair
/// runs [`vliw_joint::solve_joint`] under the per-loop budget; the greedy
/// baseline is the solver's own seed, so the comparison is exact (same
/// partition policy, same copy insertion, same IMS configuration).
pub fn joint_gap_table_with(
    corpus: &[Loop],
    machines: &[MachineDesc],
    budget_ms: u64,
    max_regs: usize,
) -> JointGapTable {
    let small: Vec<&Loop> = corpus.iter().filter(|l| l.n_vregs() <= max_regs).collect();
    let pairs: Vec<(&MachineDesc, &Loop)> = machines
        .iter()
        .flat_map(|m| small.iter().map(move |&l| (m, l)))
        .collect();
    let flat: Vec<vliw_joint::JointResult> = pairs
        .par_iter()
        .map(|&(m, l)| {
            vliw_joint::solve_joint(
                l,
                m,
                &vliw_core::PartitionConfig::default(),
                &vliw_joint::JointConfig { budget_ms },
            )
        })
        .collect();
    let rows = machines
        .iter()
        .zip(flat.chunks(small.len().max(1)))
        .map(|(m, outs)| JointGapRow {
            machine: m.name.clone(),
            n_loops: outs.len(),
            n_closed: outs.iter().filter(|r| r.optimal).count(),
            n_budget_exceeded: outs.iter().filter(|r| !r.optimal).count(),
            n_joint_wins: outs.iter().filter(|r| r.ii < r.greedy_ii).count(),
            n_joint_regressions: outs.iter().filter(|r| r.ii > r.greedy_ii).count(),
            mean_greedy_ii: arith_mean(
                &outs.iter().map(|r| r.greedy_ii as f64).collect::<Vec<_>>(),
            ),
            mean_joint_ii: arith_mean(&outs.iter().map(|r| r.ii as f64).collect::<Vec<_>>()),
            bank_nodes: outs.iter().map(|r| r.stats.bank_nodes).sum(),
            sched_nodes: outs.iter().map(|r| r.stats.sched_nodes).sum(),
            propagations: outs.iter().map(|r| r.stats.propagations).sum(),
        })
        .collect();
    JointGapTable {
        budget_ms,
        max_regs,
        rows,
    }
}

/// One machine model's row of the joint-solver *scaling* experiment: the
/// pressure slice (13–24 vregs by default) where the bank tree is wide
/// enough that closing within an interactive budget depends on the
/// incremental propagators and the no-good ladder.
#[derive(Debug, Clone)]
pub struct JointScalingRow {
    /// Machine name.
    pub machine: String,
    /// Loops evaluated (the `min_regs..=max_regs` slice).
    pub n_loops: usize,
    /// Loops closed: II proven jointly optimal within budget.
    pub n_closed: usize,
    /// Loops bounded: truncated, but the II ladder certified at least one
    /// rung beyond the analytic floor (`lower_bound_ii > seed_lb`), so the
    /// reported gap is tighter than analysis alone gives.
    pub n_bounded: usize,
    /// Loops where the budget expired with the bound still at the analytic
    /// floor (`n_closed + n_bounded + n_budget_exceeded == n_loops`).
    pub n_budget_exceeded: usize,
    /// Loops where the joint solver beat greedy by at least one full II.
    pub n_joint_wins: usize,
    /// Mean open gap `ii − lower_bound_ii` over non-closed loops (0 when
    /// everything closed).
    pub mean_open_gap: f64,
    /// Bank-assignment search nodes expanded across the slice.
    pub bank_nodes: u64,
    /// Fixed-II residue-search nodes expanded across the slice.
    pub sched_nodes: u64,
    /// No-good replays that vetoed a branch.
    pub nogood_hits: u64,
    /// Total solve wall-clock across the slice, milliseconds.
    pub solve_ms: u64,
}

/// The joint-solver scaling experiment over a vreg *range* slice.
#[derive(Debug, Clone)]
pub struct JointScalingTable {
    /// Per-loop search budget, in milliseconds.
    pub budget_ms: u64,
    /// Low end of the register-count slice (inclusive).
    pub min_regs: usize,
    /// High end of the register-count slice (inclusive).
    pub max_regs: usize,
    /// One row per machine model.
    pub rows: Vec<JointScalingRow>,
}

impl JointScalingTable {
    /// Fraction of (machine, loop) solves that closed, in percent.
    pub fn closed_pct(&self) -> f64 {
        let total: usize = self.rows.iter().map(|r| r.n_loops).sum();
        let closed: usize = self.rows.iter().map(|r| r.n_closed).sum();
        100.0 * closed as f64 / total.max(1) as f64
    }

    /// True iff every non-closed solve still carries a certified bound at
    /// or above the analytic floor — i.e. no solve ever reports a vacuous
    /// `lower_bound_ii` (guaranteed by construction; `false` means the
    /// solver is broken).
    pub fn all_bounds_honest(&self) -> bool {
        self.rows
            .iter()
            .all(|r| r.n_closed + r.n_bounded + r.n_budget_exceeded == r.n_loops)
    }

    /// Render as the EXPERIMENTS.md table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "Joint solver scaling ({}–{}-vreg slice, budget {} ms)",
            self.min_regs, self.max_regs, self.budget_ms
        );
        let _ = writeln!(
            s,
            "{:<10} {:>5} {:>7} {:>7} {:>5} {:>5} {:>7} {:>10} {:>10} {:>8} {:>8}",
            "Model",
            "Loops",
            "Closed%",
            "Bound",
            "Bdgt",
            "Wins",
            "OpenGap",
            "BankNodes",
            "SchedNodes",
            "NgHits",
            "SolveMs"
        );
        for r in &self.rows {
            let _ = writeln!(
                s,
                "{:<10} {:>5} {:>6.0}% {:>7} {:>5} {:>5} {:>7.2} {:>10} {:>10} {:>8} {:>8}",
                r.machine,
                r.n_loops,
                100.0 * r.n_closed as f64 / r.n_loops.max(1) as f64,
                r.n_bounded,
                r.n_budget_exceeded,
                r.n_joint_wins,
                r.mean_open_gap,
                r.bank_nodes,
                r.sched_nodes,
                r.nogood_hits,
                r.solve_ms
            );
        }
        let _ = writeln!(
            s,
            "closed_pct={:.1} bounds_honest={}",
            self.closed_pct(),
            self.all_bounds_honest()
        );
        s
    }
}

/// Compute the joint scaling table over the paper's six machine models.
pub fn joint_scaling_table(
    corpus: &[Loop],
    budget_ms: u64,
    min_regs: usize,
    max_regs: usize,
) -> JointScalingTable {
    joint_scaling_table_with(corpus, &paper_machines(), budget_ms, min_regs, max_regs)
}

/// [`joint_scaling_table`] with explicit machines. Same per-pair protocol
/// as [`joint_gap_table_with`], restricted to loops whose vreg count lies
/// in `min_regs..=max_regs` and reporting the closed/bounded/budget-
/// exceeded split a truncating budget makes meaningful.
pub fn joint_scaling_table_with(
    corpus: &[Loop],
    machines: &[MachineDesc],
    budget_ms: u64,
    min_regs: usize,
    max_regs: usize,
) -> JointScalingTable {
    let slice: Vec<&Loop> = corpus
        .iter()
        .filter(|l| (min_regs..=max_regs).contains(&l.n_vregs()))
        .collect();
    let pairs: Vec<(&MachineDesc, &Loop)> = machines
        .iter()
        .flat_map(|m| slice.iter().map(move |&l| (m, l)))
        .collect();
    let flat: Vec<vliw_joint::JointResult> = pairs
        .par_iter()
        .map(|&(m, l)| {
            vliw_joint::solve_joint(
                l,
                m,
                &vliw_core::PartitionConfig::default(),
                &vliw_joint::JointConfig { budget_ms },
            )
        })
        .collect();
    let rows = machines
        .iter()
        .zip(flat.chunks(slice.len().max(1)))
        .map(|(m, outs)| {
            let open: Vec<f64> = outs
                .iter()
                .filter(|r| !r.optimal)
                .map(|r| (r.ii - r.lower_bound_ii) as f64)
                .collect();
            JointScalingRow {
                machine: m.name.clone(),
                n_loops: outs.len(),
                n_closed: outs.iter().filter(|r| r.optimal).count(),
                n_bounded: outs
                    .iter()
                    .filter(|r| !r.optimal && r.lower_bound_ii > r.seed_lb)
                    .count(),
                n_budget_exceeded: outs
                    .iter()
                    .filter(|r| !r.optimal && r.lower_bound_ii <= r.seed_lb)
                    .count(),
                n_joint_wins: outs.iter().filter(|r| r.ii < r.greedy_ii).count(),
                mean_open_gap: arith_mean(&open),
                bank_nodes: outs.iter().map(|r| r.stats.bank_nodes).sum(),
                sched_nodes: outs.iter().map(|r| r.stats.sched_nodes).sum(),
                nogood_hits: outs.iter().map(|r| r.stats.nogood_hits).sum(),
                solve_ms: outs
                    .iter()
                    .map(|r| r.stats.elapsed.as_millis() as u64)
                    .sum(),
            }
        })
        .collect();
    JointScalingTable {
        budget_ms,
        min_regs,
        max_regs,
        rows,
    }
}

/// One row of the scheduler comparison.
#[derive(Debug, Clone)]
pub struct SchedulerRow {
    /// Scheduler label.
    pub name: String,
    /// Arithmetic-mean normalised degradation.
    pub arith: f64,
    /// Percent of loops with zero degradation.
    pub pct_zero: f64,
    /// Mean MVE kernel-unroll factor (register lifetimes / II).
    pub mean_unroll: f64,
    /// Mean peak float-register pressure in the busiest bank.
    pub mean_pressure: f64,
}

/// Scheduler comparison (§6.3): Rau's iterative modulo scheduling (the
/// paper) vs Llosa's swing modulo scheduling (Nystrom & Eichenberger) —
/// same partitioner, same machine. Swing exists to shorten lifetimes, which
/// shows up as lower MVE unroll and lower register pressure.
pub fn scheduler_compare(corpus: &[Loop], machine: &MachineDesc) -> Vec<SchedulerRow> {
    use crate::driver::SchedulerKind;
    [
        ("rau-ims", SchedulerKind::Ims),
        ("swing-sms", SchedulerKind::Swing),
    ]
    .into_iter()
    .map(|(name, sched)| {
        let cfg = PipelineConfig {
            scheduler: sched,
            ..Default::default()
        };
        let rs = run_corpus(corpus, machine, &cfg);
        let norm: Vec<f64> = rs.iter().map(|r| r.normalized).collect();
        let hist = Histogram::from_degradations(
            &rs.iter().map(|r| r.degradation_pct()).collect::<Vec<_>>(),
        );
        SchedulerRow {
            name: name.to_string(),
            arith: arith_mean(&norm),
            pct_zero: hist.percent_undegraded(),
            mean_unroll: arith_mean(&rs.iter().map(|r| r.mve_unroll as f64).collect::<Vec<_>>()),
            mean_pressure: arith_mean(
                &rs.iter()
                    .map(|r| r.peak_float_pressure as f64)
                    .collect::<Vec<_>>(),
            ),
        }
    })
    .collect()
}

/// Render scheduler-comparison rows.
pub fn render_scheduler_compare(rows: &[SchedulerRow], title: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{title}");
    let _ = writeln!(
        s,
        "{:<12} {:>8} {:>9} {:>10} {:>10}",
        "Scheduler", "Arith", "0%-degr", "MVE-unroll", "F-pressure"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<12} {:>8.1} {:>8.1}% {:>10.2} {:>10.2}",
            r.name, r.arith, r.pct_zero, r.mean_unroll, r.mean_pressure
        );
    }
    s
}

/// Ablation B: copy-latency sensitivity (§6.3 — Nystrom/Eichenberger and
/// Ozer assume 1-cycle copies; the paper uses 2/3).
pub fn latency_sweep(corpus: &[Loop], n_clusters: usize) -> Vec<AblationRow> {
    let fus = 16 / n_clusters;
    let variants = [
        ("copies 2/3 cyc (paper)", LatencyTable::paper()),
        ("copies 1/1 cyc (N&E)", LatencyTable::paper_fast_copies()),
    ];
    variants
        .into_iter()
        .flat_map(|(name, lat)| {
            [true, false].into_iter().map(move |emb| {
                let m = if emb {
                    MachineDesc::embedded(n_clusters, fus)
                } else {
                    MachineDesc::copy_unit(n_clusters, fus)
                }
                .with_latencies(lat.clone());
                let rs = run_corpus(corpus, &m, &PipelineConfig::default());
                summarise(
                    &format!("{name} [{}]", if emb { "emb" } else { "copy" }),
                    &rs,
                )
            })
        })
        .collect()
}

/// The whole-program experiment the paper cites from its companion study
/// \[16\]: "on whole programs for an 8-wide VLIW architecture with 8 register
/// banks, we can expect roughly a 10% degradation … In a 4-wide machine
/// with 4 partitions (of 1 functional unit each) we found a degradation of
/// roughly 11%" (§3, §7). We reproduce the 4-wide/4-partition point on a
/// corpus of synthetic whole functions.
pub fn whole_programs(n_funcs: usize) -> (f64, f64, usize) {
    let mut funcs = vliw_loopgen::function_corpus(n_funcs, 0x1616);
    // [16] "used local scheduling only" for its whole-program numbers:
    // treat every block as straight-line code (trip 1 ⇒ list scheduling).
    for f in &mut funcs {
        for b in &mut f.blocks {
            b.trip_count = 1;
        }
    }
    let machine = MachineDesc::embedded(4, 1); // 4-wide, 4 partitions of 1 FU
                                               // Straight-line whole-program code is latency-bound, not
                                               // throughput-bound: spreading a serial chain across 1-FU clusters buys
                                               // nothing and pays copy latency, so the balance term is disabled here —
                                               // consistent with the §7 weight tuner, which also drives it to zero.
    let cfg = PipelineConfig {
        partition: vliw_core::PartitionConfig::no_balance(),
        ..Default::default()
    };
    let results: Vec<crate::function::FunctionResult> = funcs
        .par_iter()
        .map(|f| crate::function::run_function(f, &machine, &cfg))
        .collect();
    let norms: Vec<f64> = results.iter().map(|r| r.weighted_normalized).collect();
    let copies: usize = results.iter().map(|r| r.total_copies).sum();
    (arith_mean(&norms), harmonic_mean(&norms), copies)
}

/// The worked example of §4.2 (Figures 1–3): the `xpos` update, scheduled
/// ideally on a 2-wide unit-latency machine and partitioned onto 2 banks of
/// one FU each.
#[derive(Debug, Clone)]
pub struct PaperExample {
    /// The straight-line body.
    pub body: Loop,
    /// Cycles for one pass, monolithic (paper: 7).
    pub ideal_span: i64,
    /// Cycles for one pass after partitioning (paper: 9).
    pub clustered_span: i64,
    /// Kernel copies the partition required (paper: 2 — r2 and r6).
    pub n_copies: usize,
}

/// Build and evaluate the §4.2 example.
pub fn paper_example() -> PaperExample {
    // xpos = xpos + (xvel*t) + (xaccel*t*t/2.0)
    let mut b = LoopBuilder::new("xpos_example");
    let xvel = b.array("xvel", RegClass::Float, 2);
    let t_arr = b.array("t", RegClass::Float, 2);
    let xaccel = b.array("xaccel", RegClass::Float, 2);
    let xpos = b.array("xpos", RegClass::Float, 2);
    let two = b.live_in_float_val("two", 2.0);
    let r1 = b.load(xvel, 0, 0); // load r1, xvel
    let r2 = b.load(t_arr, 0, 0); // load r2, t
    let r5 = b.fmul(r1, r2); // mult r5, r1, r2
    let r3 = b.load(xaccel, 0, 0); // load r3, xaccel
    let r4 = b.load(xpos, 0, 0); // load r4, xpos
    let r7 = b.fmul(r3, r2); // mult r7, r3, r2
    let r6 = b.fadd(r4, r5); // add  r6, r4, r5
    let r8 = b.fdiv(r2, two); // div  r8, r2, 2.0
    let r9 = b.fmul(r7, r8); // mult r9, r7, r8
    let r10 = b.fadd(r6, r9); // add  r10, r6, r9
    b.store(xpos, 0, 0, r10); // store xpos, r10
    let body = b.finish(1);

    let unit = LatencyTable::unit();
    let ideal_m = MachineDesc::monolithic(2).with_latencies(unit.clone());
    let clustered_m = MachineDesc::embedded(2, 1).with_latencies(unit);

    let cfg = PipelineConfig {
        simulate: true,
        ..Default::default()
    };
    let r = run_loop(&body, &clustered_m, &cfg);
    assert_eq!(r.sim_ok, Some(true));

    // Spans (straight-line time for one pass) rather than II: the example is
    // a single basic block, scheduled once.
    let ddg = vliw_ddg::build_ddg(&body, &ideal_m.latencies);
    let ideal = vliw_sched::list_schedule(&vliw_sched::SchedProblem::ideal(&body, &ideal_m), &ddg);
    let ideal_span = ideal.iteration_span(&body, &ideal_m);

    let part = {
        let slack =
            vliw_ddg::compute_slack(&ddg, |op| ideal_m.latencies.of(body.op(op).opcode) as i64);
        let rcg = vliw_core::build_rcg(
            &body,
            &ideal,
            &slack,
            &vliw_core::PartitionConfig::default(),
        );
        vliw_core::assign_banks_caps(&rcg, &[1, 1], &vliw_core::PartitionConfig::default())
    };
    let clustered = vliw_core::insert_copies(&body, &part);
    let cddg = vliw_ddg::build_ddg(&clustered.body, &clustered_m.latencies);
    let sched = vliw_sched::list_schedule(
        &vliw_sched::SchedProblem::clustered(&clustered.body, &clustered_m, &clustered.cluster_of),
        &cddg,
    );
    let clustered_span = sched.iteration_span(&clustered.body, &clustered_m);

    PaperExample {
        body,
        ideal_span,
        clustered_span,
        n_copies: clustered.n_kernel_copies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_loopgen::{corpus_with, CorpusSpec};

    fn small_corpus(n: usize) -> Vec<Loop> {
        let spec = CorpusSpec {
            n,
            ..Default::default()
        };
        corpus_with(&spec)
    }

    #[test]
    fn paper_example_shape() {
        let ex = paper_example();
        assert_eq!(ex.body.n_ops(), 11);
        // Ideal two-wide unit-latency pass fits in ~6–7 cycles; partitioned
        // onto 2×1 it pays a small copy penalty, exactly the paper's story.
        assert!(ex.ideal_span <= 7, "ideal span {}", ex.ideal_span);
        assert!(ex.clustered_span >= ex.ideal_span);
        assert!(
            ex.clustered_span <= ex.ideal_span + 4,
            "clustered span {} vs ideal {}",
            ex.clustered_span,
            ex.ideal_span
        );
    }

    #[test]
    fn grid_sweep_matches_per_machine_sweep() {
        let c = small_corpus(10);
        let machines = [MachineDesc::embedded(2, 8), MachineDesc::copy_unit(4, 4)];
        let cfg = PipelineConfig::default();
        let grid = run_corpus_grid(&c, &machines, &cfg);
        assert_eq!(grid.len(), machines.len());
        for (m, rows) in machines.iter().zip(&grid) {
            let seq = run_corpus(&c, m, &cfg);
            assert_eq!(rows.len(), seq.len());
            for (a, b) in rows.iter().zip(&seq) {
                assert_eq!(a.name, b.name);
                assert_eq!(a.clustered_ii, b.clustered_ii);
                assert_eq!(a.n_copies, b.n_copies);
                assert_eq!(a.normalized, b.normalized);
            }
        }
    }

    #[test]
    fn table2_ordering_embedded_vs_copy_unit() {
        // On a small corpus slice the qualitative shape must hold: no model
        // is ever better than ideal (all means ≥ 100).
        let c = small_corpus(24);
        let t2 = table2(&c, &PipelineConfig::default());
        assert_eq!(t2.rows.len(), 6);
        for (name, _, _, a, h) in &t2.rows {
            assert!(*a >= 100.0, "{name}: arith {a}");
            assert!(*h >= 100.0 - 1e-9, "{name}: harm {h}");
            assert!(h <= a, "harmonic must not exceed arithmetic ({name})");
        }
        let render = t2.render();
        assert!(render.contains("Arithmetic Mean"));
    }

    #[test]
    fn histogram_row_renders_all_buckets() {
        let c = small_corpus(12);
        let f = fig_histogram(&c, 4, &PipelineConfig::default());
        let text = f.render();
        for label in BUCKET_LABELS {
            assert!(text.contains(label));
        }
        let total_pct: f64 = (0..11).map(|i| f.embedded.percent(i)).sum();
        assert!((total_pct - 100.0).abs() < 1e-6);
    }

    #[test]
    fn gap_aggregation_pins_budget_semantics() {
        let obs = |cost_g: f64, cost_e: f64, outcome| GapObs {
            greedy_cost: cost_g,
            exact_cost: cost_e,
            outcome,
            nodes: 10,
            greedy_copies: 2,
            exact_copies: 1,
            greedy_norm: 110.0,
            exact_norm: 105.0,
        };
        let outs = [
            // Closed, greedy already optimal: counts toward both.
            obs(5.0, 5.0, SolveOutcome::Closed),
            // Closed, exact strictly better: optimal but not greedy-optimal.
            obs(5.0, 3.0, SolveOutcome::Closed),
            // Timed out with incumbent == greedy seed: this is exactly the
            // case that used to be silently counted as "greedy optimal".
            obs(5.0, 5.0, SolveOutcome::BudgetExceeded),
        ];
        let row = aggregate_gap_row("m", &outs);
        assert_eq!(row.n_loops, 3);
        assert_eq!(row.n_optimal, 2);
        assert_eq!(row.n_budget_exceeded, 1);
        assert_eq!(
            row.n_greedy_optimal, 1,
            "a timed-out solve must never prove greedy optimal"
        );
        assert_eq!(row.nodes_expanded, 30);
        assert!((row.mean_greedy_cost - 5.0).abs() < 1e-12);
        assert!((row.mean_exact_cost - 13.0 / 3.0).abs() < 1e-12);
        // The trailing status line carries the truncation count.
        let table = GapTable {
            budget_ms: 7,
            max_regs: 12,
            rows: vec![row],
        };
        assert!(!table.all_optimal());
        let text = table.render();
        assert!(text.contains("all_optimal=false exact<=greedy=true budget_exceeded=1"));
    }

    #[test]
    fn joint_gap_table_invariants_on_slice() {
        let c = small_corpus(10);
        let machines = [MachineDesc::embedded(4, 4), MachineDesc::copy_unit(2, 8)];
        let t = joint_gap_table_with(&c, &machines, 500, 12);
        assert_eq!(t.rows.len(), 2);
        assert!(t.joint_le_greedy(), "{}", t.render());
        for r in &t.rows {
            assert_eq!(r.n_closed + r.n_budget_exceeded, r.n_loops);
            assert!(r.mean_joint_ii <= r.mean_greedy_ii + 1e-9);
        }
        let text = t.render();
        assert!(text.contains("joint_ii<=greedy_ii=true"));
    }

    #[test]
    fn table1_ideal_exceeds_clustered_copyunit() {
        let c = small_corpus(16);
        let t1 = table1(&c, &PipelineConfig::default());
        assert!(t1.ideal_ipc > 0.0);
        // Copy-unit IPC never counts copies, so it can't exceed ideal.
        for (name, _, embedded, ipc) in &t1.rows {
            if !embedded {
                assert!(
                    *ipc <= t1.ideal_ipc + 1e-9,
                    "{name}: copy-unit IPC {ipc} vs ideal {}",
                    t1.ideal_ipc
                );
            }
        }
        assert!(t1.render().contains("Clustered"));
    }
}
