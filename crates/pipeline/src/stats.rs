//! Summary statistics: means, the degradation histogram of Figures 5–7,
//! and the aggregated diagnostics summary of the cross-stage lints.

use std::collections::BTreeMap;
use vliw_analysis::{Diagnostic, Severity};

/// Aggregated view over every [`Diagnostic`] a batch of pipeline runs
/// produced — static lints and dynamic-oracle divergences alike render
/// through this one path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiagSummary {
    /// Error-level findings.
    pub errors: usize,
    /// Warn-level findings.
    pub warns: usize,
    /// Info-level findings.
    pub infos: usize,
    /// Findings per stable lint code, sorted by code.
    pub by_code: Vec<(String, usize)>,
}

impl DiagSummary {
    /// Summarise a stream of diagnostics (chain `LoopResult::diagnostics`
    /// slices across a corpus).
    pub fn from_diags<'a>(diags: impl IntoIterator<Item = &'a Diagnostic>) -> Self {
        let mut s = DiagSummary::default();
        let mut by_code: BTreeMap<String, usize> = BTreeMap::new();
        for d in diags {
            match d.severity {
                Severity::Error => s.errors += 1,
                Severity::Warn => s.warns += 1,
                Severity::Info => s.infos += 1,
            }
            *by_code.entry(d.code.code().to_string()).or_default() += 1;
        }
        s.by_code = by_code.into_iter().collect();
        s
    }

    /// Summarise everything a slice of loop results collected.
    pub fn from_results(results: &[crate::LoopResult]) -> Self {
        Self::from_diags(results.iter().flat_map(|r| r.diagnostics.iter()))
    }

    /// No findings at all?
    pub fn is_clean(&self) -> bool {
        self.errors == 0 && self.warns == 0 && self.infos == 0
    }

    /// One-paragraph text rendering.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "diagnostics: {} error(s), {} warning(s), {} note(s)\n",
            self.errors, self.warns, self.infos
        );
        for (code, n) in &self.by_code {
            let _ = writeln!(out, "  {code:<9} ×{n}");
        }
        out
    }
}

/// Histogram bucket labels exactly as in the paper's figures.
pub const BUCKET_LABELS: [&str; 11] = [
    "0.00%", "<10%", "<20%", "<30%", "<40%", "<50%", "<60%", "<70%", "<80%", "<90%", ">90%",
];

/// Arithmetic mean (0.0 for an empty slice).
pub fn arith_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Harmonic mean (0.0 for an empty slice; panics on non-positive values,
/// which cannot occur for normalised degradations ≥ 100).
pub fn harmonic_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    assert!(xs.iter().all(|&x| x > 0.0));
    xs.len() as f64 / xs.iter().map(|x| 1.0 / x).sum::<f64>()
}

/// Bucket index (0..=10) for a degradation percentage (0 = exactly no
/// degradation, 1 = under 10%, …, 10 = 90% or more).
pub fn degradation_bucket(pct: f64) -> usize {
    if pct <= 0.0 {
        0
    } else if pct >= 90.0 {
        10
    } else {
        1 + (pct / 10.0) as usize
    }
}

/// A percentage-of-loops histogram over the 11 degradation buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Loop counts per bucket.
    pub counts: [usize; 11],
    /// Total loops.
    pub total: usize,
}

impl Histogram {
    /// Build from degradation percentages.
    pub fn from_degradations(pcts: &[f64]) -> Self {
        let mut counts = [0usize; 11];
        for &p in pcts {
            counts[degradation_bucket(p)] += 1;
        }
        Histogram {
            counts,
            total: pcts.len(),
        }
    }

    /// Percentage of loops in bucket `i`.
    pub fn percent(&self, i: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            100.0 * self.counts[i] as f64 / self.total as f64
        }
    }

    /// Percentage of loops with zero degradation (the statistic Nystrom and
    /// Eichenberger report, §6.3).
    pub fn percent_undegraded(&self) -> f64 {
        self.percent(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means() {
        assert_eq!(arith_mean(&[100.0, 120.0]), 110.0);
        let h = harmonic_mean(&[100.0, 200.0]);
        assert!((h - 400.0 / 3.0).abs() < 1e-9);
        assert!(harmonic_mean(&[100.0, 120.0]) < arith_mean(&[100.0, 120.0]));
        assert_eq!(arith_mean(&[]), 0.0);
        assert_eq!(harmonic_mean(&[]), 0.0);
    }

    #[test]
    fn buckets_match_figure_axes() {
        assert_eq!(degradation_bucket(0.0), 0);
        assert_eq!(degradation_bucket(0.1), 1);
        assert_eq!(degradation_bucket(9.99), 1);
        assert_eq!(degradation_bucket(10.0), 2);
        assert_eq!(degradation_bucket(33.3), 4);
        assert_eq!(degradation_bucket(89.9), 9);
        assert_eq!(degradation_bucket(90.0), 10);
        assert_eq!(degradation_bucket(250.0), 10);
    }

    #[test]
    fn histogram_percentages() {
        let h = Histogram::from_degradations(&[0.0, 0.0, 5.0, 50.0]);
        assert_eq!(h.counts[0], 2);
        assert_eq!(h.counts[1], 1);
        assert_eq!(h.counts[6], 1);
        assert_eq!(h.percent_undegraded(), 50.0);
        assert_eq!(h.percent(6), 25.0);
    }

    #[test]
    fn labels_count_matches_buckets() {
        assert_eq!(BUCKET_LABELS.len(), 11);
        let h = Histogram::from_degradations(&[]);
        assert_eq!(h.counts.len(), BUCKET_LABELS.len());
    }
}
