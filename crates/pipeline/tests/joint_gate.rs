//! Lint-gated pipeline runs over the register-pressure-stressed corpus.
//!
//! `LintMode::Gate` (the default) panics in debug builds at the first
//! Error-level finding of any stage gate, so simply driving `run_loop` over
//! the pressure family is the audit: partition, schedule and — when the
//! joint partitioner runs — the JNT001–003 claim lints must all stay clean,
//! on closed and on budget-truncated solves alike.

use vliw_ir::{Loop, LoopBuilder, RegClass};
use vliw_machine::MachineDesc;
use vliw_pipeline::{run_loop, PartitionerKind, PipelineConfig};

/// daxpy unrolled 6×: the canonical instance whose II=2 rung is a deep
/// refutation, so a few-millisecond budget reliably truncates the ladder.
fn hard_daxpy() -> Loop {
    let mut b = LoopBuilder::new("hard_daxpy_u6");
    let x = b.array("x", RegClass::Float, 1024);
    let y = b.array("y", RegClass::Float, 1024);
    let a = b.live_in_float("a");
    for u in 0..6i64 {
        let xv = b.load(x, u, 6);
        let yv = b.load(y, u, 6);
        let p = b.fmul(a, xv);
        let s = b.fadd(yv, p);
        b.store(y, u, 6, s);
    }
    b.finish(128)
}

#[test]
fn pressure_corpus_passes_the_greedy_lint_gate() {
    let machine = MachineDesc::embedded(4, 4);
    let cfg = PipelineConfig::default();
    let corpus = vliw_loopgen::pressure_corpus();
    assert!(corpus.len() >= 48);
    for l in &corpus {
        let r = run_loop(l, &machine, &cfg);
        assert!(r.clustered_ii >= r.ideal_ii, "{}", l.name);
        assert!(r.joint.is_none(), "greedy runs carry no joint claims");
    }
}

#[test]
fn pressure_corpus_joint_claims_survive_the_jnt_gate() {
    let machine = MachineDesc::embedded(4, 4);
    let cfg = PipelineConfig {
        partitioner: PartitionerKind::Joint { budget_ms: 500 },
        ..PipelineConfig::default()
    };
    // Every fourth loop keeps the debug-mode cost bounded while touching
    // every (chains, streams) shape the family generates.
    for l in vliw_loopgen::pressure_corpus().iter().step_by(4) {
        let r = run_loop(l, &machine, &cfg);
        let j = r.joint.expect("joint partitioner reports its outcome");
        assert!(j.lower_bound_ii <= j.ii, "{}", l.name);
        assert!(j.ii <= j.greedy_ii, "{}", l.name);
        if j.optimal {
            assert_eq!(j.lower_bound_ii, j.ii, "{}", l.name);
        } else {
            assert!(j.truncated(), "{}", l.name);
        }
    }
}

#[test]
fn truncated_joint_run_passes_the_jnt_gate_with_honest_bounds() {
    let machine = MachineDesc::embedded(4, 4);
    let cfg = PipelineConfig {
        partitioner: PartitionerKind::Joint { budget_ms: 5 },
        ..PipelineConfig::default()
    };
    let l = hard_daxpy();
    // The gate panics (debug) if the truncated claims trip JNT001–003.
    let r = run_loop(&l, &machine, &cfg);
    let j = r.joint.expect("joint outcome present on truncated runs");
    assert!(!j.optimal, "5 ms cannot close this instance");
    assert!(j.truncated());
    assert!(j.lower_bound_ii <= j.ii);
    assert!(j.ii <= j.greedy_ii);
    assert!(r.clustered_ii >= j.lower_bound_ii);
}
