//! Pipeline-level invariants of alpha-canonicalization.
//!
//! The pipeline as a whole is *not* equivariant under renaming — heuristic
//! tie-breaks (copy insertion, MVE unroll choice, hoisting) read vreg and
//! statement indices, so isomorphic inputs can take different downstream
//! paths. That is exactly why the serve cache keeps the exact key
//! authoritative and only aliases semantically-equal requests to a single
//! representative's compilation (see DESIGN.md §12).
//!
//! What *must* hold, and is pinned here:
//!
//! * `ideal_ii` — the dependence-derived recurrence/resource bound — is a
//!   function of loop structure alone, so canonicalization and isomorphic
//!   variants cannot move it;
//! * the driver's simulate path (which now embeds the `NRM003`
//!   semantics-preservation oracle) stays clean over the corpus for both
//!   the original and the canonical form.

use vliw_machine::MachineDesc;
use vliw_normal::{canonicalize, variant};
use vliw_pipeline::{run_loop, LintMode, PipelineConfig};

#[test]
fn ideal_ii_is_invariant_under_canonicalization_and_variants() {
    let corpus = vliw_loopgen::corpus();
    let machines = [MachineDesc::embedded(4, 4), MachineDesc::copy_unit(4, 4)];
    let cfg = PipelineConfig::default();
    for m in &machines {
        for l in &corpus {
            let base = run_loop(l, m, &cfg);
            let canon = run_loop(&canonicalize(l).body, m, &cfg);
            let var = run_loop(&variant(l, 17), m, &cfg);
            assert_eq!(
                base.ideal_ii, canon.ideal_ii,
                "{} on {}: canonicalization moved ideal_ii",
                l.name, m.name
            );
            assert_eq!(
                base.ideal_ii, var.ideal_ii,
                "{} on {}: isomorphic variant moved ideal_ii",
                l.name, m.name
            );
        }
    }
}

#[test]
fn simulate_path_with_nrm003_is_clean_on_canonical_forms() {
    let corpus = vliw_loopgen::corpus();
    let machine = MachineDesc::embedded(4, 4);
    let cfg = PipelineConfig {
        simulate: true,
        lint: LintMode::Collect,
        ..Default::default()
    };
    for l in corpus.iter().take(16) {
        for body in [l.clone(), canonicalize(l).body] {
            let r = run_loop(&body, &machine, &cfg);
            let errors: Vec<_> = r
                .diagnostics
                .iter()
                .filter(|d| d.severity == vliw_analysis::Severity::Error)
                .collect();
            assert!(errors.is_empty(), "{}: {errors:?}", body.name);
        }
    }
}
