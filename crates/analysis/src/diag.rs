//! The unified diagnostics engine: severities, stable lint codes, source
//! locations, and text/JSON renderers.

use std::fmt;
use vliw_ir::{OpId, VReg};
use vliw_machine::ClusterId;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: worth surfacing, never wrong.
    Info,
    /// Suspicious but not demonstrably incorrect (e.g. imbalance).
    Warn,
    /// A violated invariant: the artifact is wrong.
    Error,
}

impl Severity {
    /// The canonical lowercase name (`info` / `warn` / `error`).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }

    /// Inverse of [`Severity::name`], for wire decoding.
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "info" => Some(Severity::Info),
            "warn" => Some(Severity::Warn),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// The pipeline stage a finding belongs to. Carried on every
/// [`Diagnostic`] as a closed enum (not a free-form string) so diagnostics
/// survive a round trip through the vliw-serve wire/cache encoding intact:
/// [`Stage::parse`] is the exact inverse of [`Stage::name`], and the
/// canonical names are stable across versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Structural verification of the input IR.
    Ir,
    /// Register component graph construction (§4.1).
    Rcg,
    /// Bank assignment / partitioning of the RCG.
    Partition,
    /// Copy insertion and the rebuilt clustered body.
    Copies,
    /// Per-bank register-pressure accounting.
    Pressure,
    /// Modulo scheduling (ideal or clustered).
    Schedule,
    /// Prelude/kernel/postlude flat-code expansion.
    Expand,
    /// Dynamic equivalence oracles (virtual or physical simulation).
    Sim,
    /// Alpha-canonicalization (normal form, structural hash, witness).
    Normal,
    /// Joint (II, slot, bank) solver claims (witness legality, bound
    /// consistency, optimality honesty).
    Joint,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 10] = [
        Stage::Ir,
        Stage::Rcg,
        Stage::Partition,
        Stage::Copies,
        Stage::Pressure,
        Stage::Schedule,
        Stage::Expand,
        Stage::Sim,
        Stage::Normal,
        Stage::Joint,
    ];

    /// The stable canonical name, e.g. `partition`.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Ir => "ir",
            Stage::Rcg => "rcg",
            Stage::Partition => "partition",
            Stage::Copies => "copies",
            Stage::Pressure => "pressure",
            Stage::Schedule => "schedule",
            Stage::Expand => "expand",
            Stage::Sim => "sim",
            Stage::Normal => "normal",
            Stage::Joint => "joint",
        }
    }

    /// Inverse of [`Stage::name`], for wire decoding.
    pub fn parse(s: &str) -> Option<Stage> {
        Stage::ALL.into_iter().find(|st| st.name() == s)
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Stable lint codes. The numeric part never changes meaning across
/// versions; renderers print `CODE slug`, e.g.
/// `BANK001 foreign-bank-operand-without-copy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum LintCode {
    /// A non-copy operation reads an operand whose register lives in a
    /// different bank than the operation's cluster, and no copy feeds it.
    Bank001,
    /// A register was assigned to a bank index outside the machine's
    /// cluster range.
    Bank002,
    /// Bank population is heavily imbalanced relative to cluster capacity
    /// while the balance penalty was enabled.
    Bank003,
    /// Per-bank MaxLive exceeds the configured bank capacity for a class.
    Pres002,
    /// A def/use pair of some operation has no positive (attraction) RCG
    /// edge.
    Rcg001,
    /// RCG adjacency is asymmetric (internal graph corruption).
    Rcg002,
    /// Two distinct registers defined in the same ideal-kernel row lack the
    /// repulsion edge §4.1 requires.
    Rcg003,
    /// An RCG edge exists that neither attraction (shared def/use
    /// operation) nor repulsion (same-row defs) justifies.
    Rcg004,
    /// Copy-network dataflow is broken: orphaned, duplicated, self, or
    /// class-changing copy.
    Copy004,
    /// The rebuilt clustered DDG misses the flow edge a kernel copy implies,
    /// or schedules the copy before its producer's latency elapses.
    Copy005,
    /// Flat-code expansion disagrees with the schedule's stage structure
    /// (prelude/kernel/postlude mismatch).
    Exp005,
    /// Clustered schedule violates a dependence modulo II.
    Sched001,
    /// Clustered schedule over-subscribes a resource row.
    Sched002,
    /// An operation landed on a cluster other than its pinned one.
    Sched003,
    /// Schedule shape or issue-time domain error.
    Sched004,
    /// The dynamic equivalence oracle (cycle-accurate simulation vs scalar
    /// reference) found a divergence.
    Sim006,
    /// The IR itself fails structural verification.
    Ir007,
    /// Canonicalizing the canonical form changed it (the normal-form
    /// rewrite is not a projection).
    Nrm001,
    /// Structural hash and alpha-equivalence disagree: an isomorphic
    /// variant changed the hash, a perturbed loop kept it, or a witness
    /// failed validation.
    Nrm002,
    /// The canonical form diverges from the original under the `vliw-sim`
    /// scalar reference oracle (canonicalization changed semantics).
    Nrm003,
    /// The joint solver's schedule witness is illegal: wrong shape for the
    /// clustered body, or it violates a dependence or resource constraint.
    Jnt001,
    /// The joint solver's claims are mutually inconsistent: the claimed II
    /// disagrees with the witness, exceeds the greedy II, or undercuts the
    /// reported lower bound.
    Jnt002,
    /// The solver claims optimality while its own lower bound leaves a gap
    /// below the claimed II.
    Jnt003,
}

impl LintCode {
    /// Every lint code the engine can emit. Wire decoders resolve codes
    /// through this table ([`LintCode::from_code`]); extending the enum
    /// without extending `ALL` breaks the `codes_round_trip` test.
    pub const ALL: [LintCode; 23] = [
        LintCode::Bank001,
        LintCode::Bank002,
        LintCode::Bank003,
        LintCode::Pres002,
        LintCode::Rcg001,
        LintCode::Rcg002,
        LintCode::Rcg003,
        LintCode::Rcg004,
        LintCode::Copy004,
        LintCode::Copy005,
        LintCode::Exp005,
        LintCode::Sched001,
        LintCode::Sched002,
        LintCode::Sched003,
        LintCode::Sched004,
        LintCode::Sim006,
        LintCode::Ir007,
        LintCode::Nrm001,
        LintCode::Nrm002,
        LintCode::Nrm003,
        LintCode::Jnt001,
        LintCode::Jnt002,
        LintCode::Jnt003,
    ];

    /// Inverse of [`LintCode::code`], for wire decoding.
    pub fn from_code(code: &str) -> Option<LintCode> {
        LintCode::ALL.into_iter().find(|c| c.code() == code)
    }

    /// The stable short code, e.g. `BANK001`.
    pub fn code(self) -> &'static str {
        match self {
            LintCode::Bank001 => "BANK001",
            LintCode::Bank002 => "BANK002",
            LintCode::Bank003 => "BANK003",
            LintCode::Pres002 => "PRES002",
            LintCode::Rcg001 => "RCG001",
            LintCode::Rcg002 => "RCG002",
            LintCode::Rcg003 => "RCG003",
            LintCode::Rcg004 => "RCG004",
            LintCode::Copy004 => "COPY004",
            LintCode::Copy005 => "COPY005",
            LintCode::Exp005 => "EXP005",
            LintCode::Sched001 => "SCHED001",
            LintCode::Sched002 => "SCHED002",
            LintCode::Sched003 => "SCHED003",
            LintCode::Sched004 => "SCHED004",
            LintCode::Sim006 => "SIM006",
            LintCode::Ir007 => "IR007",
            LintCode::Nrm001 => "NRM001",
            LintCode::Nrm002 => "NRM002",
            LintCode::Nrm003 => "NRM003",
            LintCode::Jnt001 => "JNT001",
            LintCode::Jnt002 => "JNT002",
            LintCode::Jnt003 => "JNT003",
        }
    }

    /// The human-readable slug, e.g. `foreign-bank-operand-without-copy`.
    pub fn slug(self) -> &'static str {
        match self {
            LintCode::Bank001 => "foreign-bank-operand-without-copy",
            LintCode::Bank002 => "bank-index-out-of-range",
            LintCode::Bank003 => "bank-population-imbalance",
            LintCode::Pres002 => "maxlive-exceeds-bank-capacity",
            LintCode::Rcg001 => "missing-attraction-edge-for-def-use-pair",
            LintCode::Rcg002 => "asymmetric-rcg-adjacency",
            LintCode::Rcg003 => "missing-repulsion-edge-for-same-cycle-defs",
            LintCode::Rcg004 => "spurious-rcg-edge",
            LintCode::Copy004 => "copy-dataflow-break",
            LintCode::Copy005 => "copy-latency-edge-missing",
            LintCode::Exp005 => "prelude-kernel-postlude-stage-mismatch",
            LintCode::Sched001 => "dependence-violated-modulo-ii",
            LintCode::Sched002 => "resource-row-over-subscribed",
            LintCode::Sched003 => "op-on-wrong-cluster",
            LintCode::Sched004 => "schedule-shape-error",
            LintCode::Sim006 => "dynamic-oracle-divergence",
            LintCode::Ir007 => "ir-verification-failure",
            LintCode::Nrm001 => "canonical-form-not-idempotent",
            LintCode::Nrm002 => "hash-equivalence-disagreement",
            LintCode::Nrm003 => "canonicalization-changed-semantics",
            LintCode::Jnt001 => "joint-witness-illegal",
            LintCode::Jnt002 => "joint-claim-inconsistent",
            LintCode::Jnt003 => "joint-optimality-overclaim",
        }
    }

    /// Default severity a finding of this code carries.
    pub fn default_severity(self) -> Severity {
        match self {
            LintCode::Bank003 => Severity::Warn,
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code(), self.slug())
    }
}

/// Where in the pipeline artifact a finding points.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SourceLoc {
    /// Operation, if the finding anchors to one.
    pub op: Option<OpId>,
    /// Virtual register, if the finding anchors to one.
    pub vreg: Option<VReg>,
    /// Cycle / kernel row, if relevant.
    pub cycle: Option<i64>,
    /// Cluster / bank, if relevant.
    pub cluster: Option<ClusterId>,
}

impl SourceLoc {
    /// Location anchored to an operation.
    pub fn op(op: OpId) -> Self {
        SourceLoc {
            op: Some(op),
            ..Default::default()
        }
    }

    /// Location anchored to a register.
    pub fn vreg(v: VReg) -> Self {
        SourceLoc {
            vreg: Some(v),
            ..Default::default()
        }
    }

    /// Attach a cycle.
    pub fn at_cycle(mut self, c: i64) -> Self {
        self.cycle = Some(c);
        self
    }

    /// Attach a cluster.
    pub fn in_cluster(mut self, c: ClusterId) -> Self {
        self.cluster = Some(c);
        self
    }

    fn is_empty(&self) -> bool {
        self.op.is_none() && self.vreg.is_none() && self.cycle.is_none() && self.cluster.is_none()
    }
}

impl fmt::Display for SourceLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<String> = Vec::new();
        if let Some(o) = self.op {
            parts.push(format!("op{}", o.index()));
        }
        if let Some(v) = self.vreg {
            parts.push(format!("v{}", v.index()));
        }
        if let Some(c) = self.cycle {
            parts.push(format!("cycle {c}"));
        }
        if let Some(c) = self.cluster {
            parts.push(format!("{c}"));
        }
        write!(f, "{}", parts.join(", "))
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable lint code.
    pub code: LintCode,
    /// Severity (usually `code.default_severity()`).
    pub severity: Severity,
    /// Human-readable explanation with concrete values.
    pub message: String,
    /// Anchor in the artifact.
    pub loc: SourceLoc,
    /// Pipeline stage that produced the artifact.
    pub stage: Stage,
}

impl Diagnostic {
    /// New diagnostic at the code's default severity.
    pub fn new(code: LintCode, stage: Stage, loc: SourceLoc, message: String) -> Self {
        Diagnostic {
            code,
            severity: code.default_severity(),
            message,
            loc,
            stage,
        }
    }

    /// Lower the severity to a warning.
    pub fn warning(mut self) -> Self {
        self.severity = Severity::Warn;
        self
    }

    /// Render `severity[CODE slug] @ loc (stage): message`.
    pub fn render_text(&self) -> String {
        let loc = if self.loc.is_empty() {
            String::new()
        } else {
            format!(" @ {}", self.loc)
        };
        format!(
            "{}[{}]{} ({}): {}",
            self.severity, self.code, loc, self.stage, self.message
        )
    }

    /// Render as a JSON object (hand-rolled: the offline build has no serde
    /// runtime).
    pub fn render_json(&self) -> String {
        let mut fields = vec![
            format!("\"code\":{}", json_str(self.code.code())),
            format!("\"slug\":{}", json_str(self.code.slug())),
            format!("\"severity\":{}", json_str(self.severity.name())),
            format!("\"stage\":{}", json_str(self.stage.name())),
            format!("\"message\":{}", json_str(&self.message)),
        ];
        if let Some(o) = self.loc.op {
            fields.push(format!("\"op\":{}", o.index()));
        }
        if let Some(v) = self.loc.vreg {
            fields.push(format!("\"vreg\":{}", v.index()));
        }
        if let Some(c) = self.loc.cycle {
            fields.push(format!("\"cycle\":{c}"));
        }
        if let Some(c) = self.loc.cluster {
            fields.push(format!("\"cluster\":{}", c.index()));
        }
        format!("{{{}}}", fields.join(","))
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A collection of findings for one artifact or one whole pipeline run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// The findings, in discovery order.
    pub diags: Vec<Diagnostic>,
}

impl Report {
    /// Empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Add a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diags.push(d);
    }

    /// Merge another report into this one.
    pub fn merge(&mut self, other: Report) {
        self.diags.extend(other.diags);
    }

    /// Count findings at `sev`.
    pub fn count(&self, sev: Severity) -> usize {
        self.diags.iter().filter(|d| d.severity == sev).count()
    }

    /// Any error-level findings?
    pub fn has_errors(&self) -> bool {
        self.diags.iter().any(|d| d.severity == Severity::Error)
    }

    /// True when a finding with `code` is present.
    pub fn has_code(&self, code: LintCode) -> bool {
        self.diags.iter().any(|d| d.code == code)
    }

    /// All findings with `code`.
    pub fn with_code(&self, code: LintCode) -> Vec<&Diagnostic> {
        self.diags.iter().filter(|d| d.code == code).collect()
    }

    /// Multi-line text rendering (one finding per line, summary last).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diags {
            out.push_str(&d.render_text());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s), {} note(s)\n",
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Info)
        ));
        out
    }

    /// JSON array rendering.
    pub fn render_json(&self) -> String {
        let items: Vec<String> = self.diags.iter().map(Diagnostic::render_json).collect();
        format!("[{}]", items.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_and_slugs_are_stable() {
        assert_eq!(LintCode::Bank001.code(), "BANK001");
        assert_eq!(
            LintCode::Bank001.slug(),
            "foreign-bank-operand-without-copy"
        );
        assert_eq!(LintCode::Pres002.code(), "PRES002");
        assert_eq!(
            LintCode::Rcg003.slug(),
            "missing-repulsion-edge-for-same-cycle-defs"
        );
        assert_eq!(LintCode::Copy004.code(), "COPY004");
        assert_eq!(LintCode::Exp005.code(), "EXP005");
        assert_eq!(
            format!("{}", LintCode::Sim006),
            "SIM006 dynamic-oracle-divergence"
        );
    }

    #[test]
    fn report_counts_and_rendering() {
        let mut r = Report::new();
        r.push(Diagnostic::new(
            LintCode::Bank001,
            Stage::Partition,
            SourceLoc::op(OpId(3)).in_cluster(ClusterId(1)),
            "operand v2 lives in c0".into(),
        ));
        r.push(Diagnostic::new(
            LintCode::Bank003,
            Stage::Partition,
            SourceLoc::default(),
            "bank 0 holds 90% of registers".into(),
        ));
        assert!(r.has_errors());
        assert_eq!(r.count(Severity::Error), 1);
        assert_eq!(r.count(Severity::Warn), 1);
        assert!(r.has_code(LintCode::Bank001));
        assert!(!r.has_code(LintCode::Sim006));
        let text = r.render_text();
        assert!(text.contains("error[BANK001 foreign-bank-operand-without-copy] @ op3, c1"));
        assert!(text.contains("1 error(s), 1 warning(s)"));
        let json = r.render_json();
        assert!(json.starts_with('['));
        assert!(json.contains("\"code\":\"BANK001\""));
        assert!(json.contains("\"cluster\":1"));
    }

    #[test]
    fn json_escaping() {
        let d = Diagnostic::new(
            LintCode::Sim006,
            Stage::Sim,
            SourceLoc::default(),
            "bad \"quote\" and\nnewline".into(),
        );
        let j = d.render_json();
        assert!(j.contains("bad \\\"quote\\\" and\\nnewline"));
    }

    #[test]
    fn stage_names_round_trip() {
        for s in Stage::ALL {
            assert_eq!(Stage::parse(s.name()), Some(s), "{s}");
        }
        assert_eq!(Stage::parse("banks"), None);
        assert_eq!(Stage::parse(""), None);
        // The canonical names are a wire format: spell them out so a rename
        // fails here, not in a stale cache.
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            [
                "ir",
                "rcg",
                "partition",
                "copies",
                "pressure",
                "schedule",
                "expand",
                "sim",
                "normal",
                "joint"
            ]
        );
    }

    #[test]
    fn codes_round_trip() {
        for c in LintCode::ALL {
            assert_eq!(LintCode::from_code(c.code()), Some(c), "{c}");
        }
        assert_eq!(LintCode::from_code("BANK999"), None);
    }

    #[test]
    fn severities_round_trip() {
        for s in [Severity::Info, Severity::Warn, Severity::Error] {
            assert_eq!(Severity::parse(s.name()), Some(s));
        }
        assert_eq!(Severity::parse("fatal"), None);
    }
}
