//! # vliw-analysis — cross-stage pipeline sanitizer
//!
//! A static-analysis/lint framework over every artifact the §4 pipeline
//! produces between stages: the register component graph, the bank
//! assignment, the copy-inserted clustered loop, the modulo schedules, the
//! flat prelude/kernel/postlude expansion, and (opt-in) the dynamic
//! equivalence oracle.
//!
//! The pieces:
//!
//! * [`diag`] — the unified diagnostics currency: [`Severity`], stable
//!   [`LintCode`]s (`BANK001 foreign-bank-operand-without-copy`, `PRES002
//!   maxlive-exceeds-bank-capacity`, …), [`SourceLoc`] anchors (op, vreg,
//!   cycle, cluster), and text/JSON renderers on [`Diagnostic`] and
//!   [`Report`];
//! * [`artifacts`] — the borrowed [`Artifacts`] bundle passes inspect;
//!   optional fields let the same analyzer gate a half-finished pipeline;
//! * [`passes`] — the [`LintPass`] trait and the [`Analyzer`] registry;
//! * the lint modules — [`ir_lints`], [`normal_lints`], [`rcg_lints`],
//!   [`bank_lints`], [`copy_lints`], [`sched_lints`], [`joint_lints`],
//!   [`equiv_lints`].
//!
//! The schedule lints subsume `vliw_sched::verify_schedule`; this crate
//! re-exports that API (and the IR verifier) so downstream code has one
//! import surface for "is this artifact sane?".

#![warn(missing_docs)]

pub mod artifacts;
pub mod bank_lints;
pub mod copy_lints;
pub mod diag;
pub mod equiv_lints;
pub mod ir_lints;
pub mod joint_lints;
pub mod normal_lints;
pub mod passes;
pub mod rcg_lints;
pub mod sched_lints;

pub use artifacts::Artifacts;
pub use diag::{Diagnostic, LintCode, Report, Severity, SourceLoc, Stage};
pub use equiv_lints::{equiv_diagnostic, DynamicOraclePass};
pub use joint_lints::{JointClaim, JointPass};
pub use normal_lints::{canonical_semantics_diags, NormalFormPass};
pub use passes::{analyze, Analyzer, LintPass};
pub use sched_lints::{check_expansion, schedule_diag};

// Re-exported verifiers the lint passes subsume, so callers need only this
// crate to validate artifacts.
pub use vliw_ir::{verify_loop, VerifyError};
pub use vliw_sched::{verify_schedule, verify_schedule_all, ScheduleError};
