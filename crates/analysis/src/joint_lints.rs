//! Joint-solver claim lints (`JNT001`–`JNT003`).
//!
//! The joint (II, slot, bank) solver hands the driver a schedule *witness*
//! together with three claims: the II it achieved, the greedy II it started
//! from, and a lower bound (with an `optimal` flag when the two meet).
//! None of that is taken on faith — this pass re-derives everything from
//! the artifacts bundle:
//!
//! * `JNT001 joint-witness-illegal` — the witness has the wrong shape for
//!   the clustered body, or violates a dependence or resource constraint
//!   when re-verified against the rebuilt clustered problem;
//! * `JNT002 joint-claim-inconsistent` — the claimed II disagrees with the
//!   witness's own II, exceeds the greedy II the solver was seeded with
//!   (the incumbent can never lose to its seed), or undercuts the reported
//!   lower bound;
//! * `JNT003 joint-optimality-overclaim` — the solver claims optimality
//!   while its own lower bound sits strictly below the claimed II.
//!
//! The pass runs only when a [`JointClaim`] and the clustered artifacts are
//! both present; every other pipeline configuration skips it silently.

use crate::artifacts::Artifacts;
use crate::diag::{Diagnostic, LintCode, Report, SourceLoc, Stage};
use vliw_sched::{verify_schedule_all, SchedProblem, Schedule};

/// What the joint solver asserts about its result. Attached to the
/// [`Artifacts`] bundle by the driver when the joint partitioner ran and
/// its witness was adopted as the clustered schedule.
#[derive(Debug, Clone, Copy)]
pub struct JointClaim<'a> {
    /// The schedule witness, over the copy-inserted clustered body.
    pub schedule: &'a Schedule,
    /// The II the solver claims to have achieved.
    pub claimed_ii: u32,
    /// The greedy (partition + IMS) II the search was seeded with.
    pub greedy_ii: u32,
    /// The largest II the solver proved infeasible, plus one — i.e. a
    /// certified lower bound on the jointly achievable II.
    pub lower_bound_ii: u32,
    /// True when the solver claims `claimed_ii` is jointly optimal.
    pub optimal: bool,
}

/// Re-derives schedule legality and bound consistency for a joint-solver
/// claim (`JNT001`–`JNT003`).
pub struct JointPass;

impl crate::passes::LintPass for JointPass {
    fn name(&self) -> &'static str {
        "joint-claims"
    }

    fn run(&self, ctx: &Artifacts<'_>, report: &mut Report) {
        let Some(claim) = ctx.joint else { return };
        let (Some(cb), Some(cluster_of), Some(cddg)) =
            (ctx.clustered_body, ctx.cluster_of, ctx.cddg)
        else {
            return;
        };

        // JNT001: the witness must actually schedule the clustered body.
        let s = claim.schedule;
        if s.times.len() != cb.n_ops() {
            report.push(Diagnostic::new(
                LintCode::Jnt001,
                Stage::Joint,
                SourceLoc::default(),
                format!(
                    "joint witness covers {} op(s) but the clustered body has {}",
                    s.times.len(),
                    cb.n_ops()
                ),
            ));
        } else {
            let problem = SchedProblem::clustered(cb, ctx.machine, cluster_of);
            for e in verify_schedule_all(&problem, cddg, s) {
                report.push(Diagnostic::new(
                    LintCode::Jnt001,
                    Stage::Joint,
                    SourceLoc::default(),
                    format!("joint witness fails re-verification: {e}"),
                ));
            }
        }

        // JNT002: the three numbers must agree with the witness and each
        // other.
        if claim.claimed_ii != s.ii {
            report.push(Diagnostic::new(
                LintCode::Jnt002,
                Stage::Joint,
                SourceLoc::default(),
                format!(
                    "solver claims II {} but its witness has II {}",
                    claim.claimed_ii, s.ii
                ),
            ));
        }
        if claim.claimed_ii > claim.greedy_ii {
            report.push(Diagnostic::new(
                LintCode::Jnt002,
                Stage::Joint,
                SourceLoc::default(),
                format!(
                    "claimed II {} exceeds the greedy seed's II {} — the \
                     incumbent can never lose to its seed",
                    claim.claimed_ii, claim.greedy_ii
                ),
            ));
        }
        if claim.lower_bound_ii > claim.claimed_ii {
            report.push(Diagnostic::new(
                LintCode::Jnt002,
                Stage::Joint,
                SourceLoc::default(),
                format!(
                    "reported lower bound {} sits above the claimed II {}",
                    claim.lower_bound_ii, claim.claimed_ii
                ),
            ));
        }

        // JNT003: "optimal" requires the bound to close the gap.
        if claim.optimal && claim.lower_bound_ii != claim.claimed_ii {
            report.push(Diagnostic::new(
                LintCode::Jnt003,
                Stage::Joint,
                SourceLoc::default(),
                format!(
                    "solver claims optimality at II {} while its lower bound \
                     is {}",
                    claim.claimed_ii, claim.lower_bound_ii
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::LintPass;
    use vliw_core::{assign_banks, build_rcg, insert_copies, LoopContext, PartitionConfig};
    use vliw_ddg::build_ddg;
    use vliw_ir::Loop;
    use vliw_machine::MachineDesc;
    use vliw_sched::schedule_loop;

    /// Greedy-partition + IMS a corpus loop and return everything the pass
    /// needs, with an honest claim.
    fn pipeline(body: &Loop, machine: &MachineDesc) -> (vliw_core::ClusteredLoop, Schedule) {
        let cfg = PartitionConfig::default();
        let cx = LoopContext::new(body, machine);
        let rcg = build_rcg(body, &cx.ideal, &cx.slack, &cfg);
        let part = assign_banks(&rcg, machine.n_clusters(), &cfg);
        let cl = insert_copies(body, &part);
        let cddg = build_ddg(&cl.body, &machine.latencies);
        let problem = SchedProblem::clustered(&cl.body, machine, &cl.cluster_of);
        let sched = schedule_loop(&problem, &cddg, &Default::default()).expect("schedulable");
        (cl, sched)
    }

    fn run_pass(
        body: &Loop,
        machine: &MachineDesc,
        cl: &vliw_core::ClusteredLoop,
        cddg: &vliw_ddg::Ddg,
        claim: JointClaim<'_>,
    ) -> Report {
        let cfg = PartitionConfig::default();
        let ctx = Artifacts::new(body, machine, &cfg)
            .with_clustered(&cl.body, &cl.cluster_of, &cl.vreg_bank)
            .with_cddg(cddg)
            .with_joint(claim);
        let mut report = Report::new();
        JointPass.run(&ctx, &mut report);
        report
    }

    #[test]
    fn honest_claim_is_clean() {
        let body = &vliw_loopgen::corpus()[0];
        let machine = MachineDesc::embedded(2, 2);
        let (cl, sched) = pipeline(body, &machine);
        let cddg = build_ddg(&cl.body, &machine.latencies);
        let r = run_pass(
            body,
            &machine,
            &cl,
            &cddg,
            JointClaim {
                schedule: &sched,
                claimed_ii: sched.ii,
                greedy_ii: sched.ii,
                lower_bound_ii: 1,
                optimal: false,
            },
        );
        assert!(!r.has_errors(), "{}", r.render_text());
    }

    #[test]
    fn corrupted_witness_fires_jnt001() {
        let body = &vliw_loopgen::corpus()[0];
        let machine = MachineDesc::embedded(2, 2);
        let (cl, mut sched) = pipeline(body, &machine);
        let cddg = build_ddg(&cl.body, &machine.latencies);
        // Collapse every op onto one cycle: resources must over-subscribe.
        for t in sched.times.iter_mut() {
            *t = 0;
        }
        let r = run_pass(
            body,
            &machine,
            &cl,
            &cddg,
            JointClaim {
                schedule: &sched,
                claimed_ii: sched.ii,
                greedy_ii: sched.ii,
                lower_bound_ii: 1,
                optimal: false,
            },
        );
        assert!(r.has_code(LintCode::Jnt001), "{}", r.render_text());
    }

    #[test]
    fn truncated_witness_fires_jnt001_shape() {
        let body = &vliw_loopgen::corpus()[0];
        let machine = MachineDesc::embedded(2, 2);
        let (cl, mut sched) = pipeline(body, &machine);
        let cddg = build_ddg(&cl.body, &machine.latencies);
        sched.times.pop();
        let r = run_pass(
            body,
            &machine,
            &cl,
            &cddg,
            JointClaim {
                schedule: &sched,
                claimed_ii: sched.ii,
                greedy_ii: sched.ii,
                lower_bound_ii: 1,
                optimal: false,
            },
        );
        assert!(r.has_code(LintCode::Jnt001), "{}", r.render_text());
    }

    #[test]
    fn inconsistent_claims_fire_jnt002() {
        let body = &vliw_loopgen::corpus()[0];
        let machine = MachineDesc::embedded(2, 2);
        let (cl, sched) = pipeline(body, &machine);
        let cddg = build_ddg(&cl.body, &machine.latencies);
        // Claimed II disagrees with the witness AND beats the greedy seed
        // AND undercuts the bound: all three JNT002 arms at once.
        let r = run_pass(
            body,
            &machine,
            &cl,
            &cddg,
            JointClaim {
                schedule: &sched,
                claimed_ii: sched.ii + 5,
                greedy_ii: sched.ii,
                lower_bound_ii: sched.ii + 6,
                optimal: false,
            },
        );
        assert_eq!(
            r.with_code(LintCode::Jnt002).len(),
            3,
            "{}",
            r.render_text()
        );
    }

    #[test]
    fn optimality_overclaim_fires_jnt003() {
        let body = &vliw_loopgen::corpus()[0];
        let machine = MachineDesc::embedded(2, 2);
        let (cl, sched) = pipeline(body, &machine);
        let cddg = build_ddg(&cl.body, &machine.latencies);
        assert!(sched.ii > 1, "need room below the achieved II");
        let r = run_pass(
            body,
            &machine,
            &cl,
            &cddg,
            JointClaim {
                schedule: &sched,
                claimed_ii: sched.ii,
                greedy_ii: sched.ii,
                lower_bound_ii: sched.ii - 1,
                optimal: true,
            },
        );
        assert!(r.has_code(LintCode::Jnt003), "{}", r.render_text());
        assert!(!r.has_code(LintCode::Jnt002), "{}", r.render_text());
    }

    #[test]
    fn pass_skips_without_claim_or_artifacts() {
        let body = &vliw_loopgen::corpus()[0];
        let machine = MachineDesc::embedded(2, 2);
        let cfg = PartitionConfig::default();
        let ctx = Artifacts::new(body, &machine, &cfg);
        let mut report = Report::new();
        JointPass.run(&ctx, &mut report);
        assert!(report.diags.is_empty());
    }
}
