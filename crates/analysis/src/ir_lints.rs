//! IR structural lints (`IR007`): both loop bodies must satisfy
//! `vliw_ir::verify_loop` before anything downstream is trustworthy.

use crate::artifacts::Artifacts;
use crate::diag::{Diagnostic, LintCode, Report, SourceLoc, Stage};
use vliw_ir::{verify_loop, Loop};

/// Runs `verify_loop` over the original and (when present) clustered body.
pub struct IrPass;

impl crate::passes::LintPass for IrPass {
    fn name(&self) -> &'static str {
        "ir-structure"
    }

    fn run(&self, ctx: &Artifacts<'_>, report: &mut Report) {
        check(ctx.body, "original", report);
        if let Some(cb) = ctx.clustered_body {
            check(cb, "clustered", report);
        }
    }
}

fn check(l: &Loop, which: &str, report: &mut Report) {
    if let Err(e) = verify_loop(l) {
        report.push(Diagnostic::new(
            LintCode::Ir007,
            Stage::Ir,
            SourceLoc::default(),
            format!("{which} body fails IR verification: {e}"),
        ));
    }
}

#[cfg(test)]
mod tests {
    use crate::artifacts::Artifacts;
    use crate::diag::LintCode;
    use crate::passes::Analyzer;
    use vliw_core::PartitionConfig;
    use vliw_ir::{LoopBuilder, RegClass, VReg};
    use vliw_machine::MachineDesc;

    #[test]
    fn broken_ir_fires_ir007() {
        let mut b = LoopBuilder::new("bad");
        let x = b.array("x", RegClass::Float, 16);
        let v = b.load(x, 0, 1);
        b.store(x, 0, 1, v);
        let mut l = b.finish(8);
        // Point the store's operand at a register that doesn't exist.
        let n = l.n_vregs() as u32;
        l.ops.last_mut().unwrap().uses[0] = VReg(n + 7);
        let m = MachineDesc::monolithic(4);
        let cfg = PartitionConfig::default();
        let r = Analyzer::with_default_passes().analyze(&Artifacts::new(&l, &m, &cfg));
        assert!(r.has_code(LintCode::Ir007), "{}", r.render_text());
    }
}
