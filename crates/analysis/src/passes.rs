//! The lint registry: a pluggable list of per-stage passes over the
//! [`Artifacts`] bundle.

use crate::artifacts::Artifacts;
use crate::diag::Report;

/// One static check over the pipeline artifacts. A pass inspects whatever
/// subset of the bundle it understands and silently skips when its inputs
/// aren't present yet.
pub trait LintPass {
    /// Stable pass name for `--list`-style output.
    fn name(&self) -> &'static str;
    /// Inspect `ctx`, appending findings to `report`.
    fn run(&self, ctx: &Artifacts<'_>, report: &mut Report);
}

/// An ordered collection of lint passes.
pub struct Analyzer {
    passes: Vec<Box<dyn LintPass>>,
}

impl Analyzer {
    /// An analyzer with no passes registered.
    pub fn empty() -> Self {
        Analyzer { passes: Vec::new() }
    }

    /// The full static registry: IR structure, RCG consistency, bank
    /// legality, register pressure, copy-network dataflow, schedule
    /// legality, and expansion shape. Excludes the dynamic oracle
    /// ([`crate::equiv_lints::DynamicOraclePass`]), which simulates the
    /// loop and is opt-in by cost.
    pub fn with_default_passes() -> Self {
        let mut a = Analyzer::empty();
        a.register(Box::new(crate::ir_lints::IrPass));
        a.register(Box::new(crate::normal_lints::NormalFormPass));
        a.register(Box::new(crate::rcg_lints::RcgPass));
        a.register(Box::new(crate::bank_lints::BankPass));
        a.register(Box::new(crate::bank_lints::PressurePass));
        a.register(Box::new(crate::copy_lints::CopyPass));
        a.register(Box::new(crate::sched_lints::SchedPass));
        a.register(Box::new(crate::sched_lints::ExpansionPass));
        a.register(Box::new(crate::joint_lints::JointPass));
        a
    }

    /// Append a pass; passes run in registration order.
    pub fn register(&mut self, pass: Box<dyn LintPass>) {
        self.passes.push(pass);
    }

    /// Names of the registered passes, in run order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Run every registered pass over `ctx` and collect one report.
    pub fn analyze(&self, ctx: &Artifacts<'_>) -> Report {
        let mut report = Report::new();
        for pass in &self.passes {
            pass.run(ctx, &mut report);
        }
        report
    }
}

impl Default for Analyzer {
    fn default() -> Self {
        Analyzer::with_default_passes()
    }
}

/// Run the default static registry over `ctx`.
pub fn analyze(ctx: &Artifacts<'_>) -> Report {
    Analyzer::with_default_passes().analyze(ctx)
}
