//! Schedule legality (`SCHED001`–`SCHED004`) and flat-expansion shape
//! (`EXP005`) lints. These subsume `vliw_sched::verify_schedule`: every
//! [`ScheduleError`] maps onto a diagnostic, and the pass collects *all*
//! violations through [`verify_schedule_all`] rather than the first.

use crate::artifacts::Artifacts;
use crate::diag::{Diagnostic, LintCode, Report, SourceLoc, Stage};
use std::collections::HashSet;
use vliw_ir::Loop;
use vliw_machine::MachineDesc;
use vliw_sched::{expand, verify_schedule_all, FlatProgram, SchedProblem, Schedule, ScheduleError};

/// Re-verifies the ideal schedule (against a monolithic twin of the target)
/// and the clustered schedule (against the pinned problem), reporting every
/// violation as a diagnostic.
pub struct SchedPass;

impl crate::passes::LintPass for SchedPass {
    fn name(&self) -> &'static str {
        "schedule-legality"
    }

    fn run(&self, ctx: &Artifacts<'_>, report: &mut Report) {
        if let Some(ideal) = ctx.ideal {
            let twin = MachineDesc::monolithic(ctx.machine.issue_width())
                .with_latencies(ctx.machine.latencies.clone());
            let ddg = vliw_ddg::build_ddg(ctx.body, &ctx.machine.latencies);
            let problem = SchedProblem::ideal(ctx.body, &twin);
            for e in verify_schedule_all(&problem, &ddg, ideal) {
                report.push(schedule_diag(&e, ideal, "ideal"));
            }
        }
        let (Some(cb), Some(cluster_of), Some(cddg), Some(sched)) = (
            ctx.clustered_body,
            ctx.cluster_of,
            ctx.cddg,
            ctx.clustered_sched,
        ) else {
            return;
        };
        let problem = SchedProblem::clustered(cb, ctx.machine, cluster_of);
        for e in verify_schedule_all(&problem, cddg, sched) {
            report.push(schedule_diag(&e, sched, "clustered"));
        }
    }
}

/// Map one [`ScheduleError`] to its diagnostic.
pub fn schedule_diag(e: &ScheduleError, s: &Schedule, which: &str) -> Diagnostic {
    match e {
        ScheduleError::Shape => Diagnostic::new(
            LintCode::Sched004,
            Stage::Schedule,
            SourceLoc::default(),
            format!("{which} schedule shape mismatch: {e}"),
        ),
        ScheduleError::NegativeTime(o) => Diagnostic::new(
            LintCode::Sched004,
            Stage::Schedule,
            SourceLoc::op(*o).at_cycle(s.time(*o)),
            format!("{which} schedule issues op{} at negative time", o.index()),
        ),
        ScheduleError::Dependence {
            from,
            to,
            need,
            got,
        } => Diagnostic::new(
            LintCode::Sched001,
            Stage::Schedule,
            SourceLoc::op(*to).at_cycle(s.time(*to)),
            format!(
                "{which} schedule violates dependence op{}→op{} modulo II {}: \
                 need separation {need}, got {got}",
                from.index(),
                to.index(),
                s.ii
            ),
        ),
        ScheduleError::Resource(o) => Diagnostic::new(
            LintCode::Sched002,
            Stage::Schedule,
            SourceLoc::op(*o)
                .at_cycle(s.row(*o) as i64)
                .in_cluster(s.cluster(*o)),
            format!(
                "{which} schedule over-subscribes kernel row {} with op{}",
                s.row(*o),
                o.index()
            ),
        ),
        ScheduleError::WrongCluster(o) => Diagnostic::new(
            LintCode::Sched003,
            Stage::Schedule,
            SourceLoc::op(*o).in_cluster(s.cluster(*o)),
            format!(
                "{which} schedule places op{} on {} instead of its pinned cluster",
                o.index(),
                s.cluster(*o)
            ),
        ),
    }
}

/// Checks the prelude/kernel/postlude expansion against the schedule it was
/// expanded from (`EXP005`): stage structure, issue placement, and complete
/// single coverage of every (operation, iteration) pair.
pub struct ExpansionPass;

impl crate::passes::LintPass for ExpansionPass {
    fn name(&self) -> &'static str {
        "expansion-shape"
    }

    fn run(&self, ctx: &Artifacts<'_>, report: &mut Report) {
        let (Some(cb), Some(sched)) = (ctx.clustered_body, ctx.clustered_sched) else {
            return;
        };
        let owned;
        let flat = match ctx.flat {
            Some(f) => f,
            None => {
                owned = expand(cb, sched);
                &owned
            }
        };
        check_expansion(cb, sched, flat, report);
    }
}

/// The `EXP005` core, shared with mutation tests that corrupt a
/// [`FlatProgram`] directly.
pub fn check_expansion(body: &Loop, s: &Schedule, flat: &FlatProgram, report: &mut Report) {
    let push = |report: &mut Report, loc: SourceLoc, msg: String| {
        report.push(Diagnostic::new(LintCode::Exp005, Stage::Expand, loc, msg));
    };
    if flat.ii != s.ii {
        push(
            report,
            SourceLoc::default(),
            format!(
                "expansion records II {} but the schedule has II {}",
                flat.ii, s.ii
            ),
        );
        return; // Every later formula keys off II; don't cascade.
    }
    let sc = s.stage_count();
    if flat.stage_count != sc {
        push(
            report,
            SourceLoc::default(),
            format!(
                "expansion records {} pipeline stage(s) but the schedule has {}",
                flat.stage_count, sc
            ),
        );
    }
    let trip = body.trip_count;
    if trip == 0 || body.n_ops() == 0 {
        if !flat.is_empty() {
            push(
                report,
                SourceLoc::default(),
                format!("zero-trip loop expanded to {} cycle(s)", flat.len()),
            );
        }
        return;
    }
    let (want_prelude, want_reps) = if trip >= sc {
        (((sc - 1) * s.ii) as usize, trip - sc + 1)
    } else {
        (0, 0)
    };
    if flat.prelude_cycles != want_prelude {
        push(
            report,
            SourceLoc::default(),
            format!(
                "prelude is {} cycle(s); (SC−1)·II = ({sc}−1)·{} requires {want_prelude}",
                flat.prelude_cycles, s.ii
            ),
        );
    }
    if flat.kernel_reps != want_reps {
        push(
            report,
            SourceLoc::default(),
            format!(
                "{} steady-state kernel repetition(s); trip {} with {} stage(s) \
                 requires {want_reps}",
                flat.kernel_reps, trip, sc
            ),
        );
    }
    let want_issues = trip as usize * body.n_ops();
    if flat.n_issues() != want_issues {
        push(
            report,
            SourceLoc::default(),
            format!(
                "{} issue(s) in the flat program; {} iteration(s) of {} op(s) \
                 requires {want_issues}",
                flat.n_issues(),
                trip,
                body.n_ops()
            ),
        );
    }
    let max_t = s.times.iter().copied().max().unwrap_or(0);
    let want_len = ((trip as i64 - 1) * s.ii as i64 + max_t + 1) as usize;
    if flat.len() != want_len {
        push(
            report,
            SourceLoc::default(),
            format!(
                "flat program spans {} cycle(s), expected {want_len}",
                flat.len()
            ),
        );
    }
    let mut seen: HashSet<(u32, u32)> = HashSet::new();
    for (cycle, issues) in flat.cycles.iter().enumerate() {
        for iss in issues {
            if iss.op.index() >= body.n_ops() || iss.iter >= trip {
                push(
                    report,
                    SourceLoc::op(iss.op).at_cycle(cycle as i64),
                    format!(
                        "issue (op{}, iteration {}) is outside the loop's domain",
                        iss.op.index(),
                        iss.iter
                    ),
                );
                continue;
            }
            let want_cycle = iss.iter as i64 * s.ii as i64 + s.time(iss.op);
            if cycle as i64 != want_cycle {
                push(
                    report,
                    SourceLoc::op(iss.op).at_cycle(cycle as i64),
                    format!(
                        "op{} of iteration {} issued at cycle {cycle}; the schedule \
                         places it at {want_cycle}",
                        iss.op.index(),
                        iss.iter
                    ),
                );
            }
            if !seen.insert((iss.op.0, iss.iter)) {
                push(
                    report,
                    SourceLoc::op(iss.op).at_cycle(cycle as i64),
                    format!(
                        "op{} of iteration {} issued more than once",
                        iss.op.index(),
                        iss.iter
                    ),
                );
            }
        }
    }
}
