//! Copy-network dataflow lints (`COPY004`, `COPY005`): every kernel copy
//! must move a value between banks, feed at least one consumer, appear at
//! most once per (reaching def, destination bank), and be wired into the
//! rebuilt DDG with the machine's copy latency.

use crate::artifacts::Artifacts;
use crate::diag::{Diagnostic, LintCode, Report, SourceLoc, Stage};
use std::collections::BTreeMap;
use vliw_ddg::DepKind;

/// Checks the copy network of the clustered body.
pub struct CopyPass;

impl crate::passes::LintPass for CopyPass {
    fn name(&self) -> &'static str {
        "copy-dataflow"
    }

    fn run(&self, ctx: &Artifacts<'_>, report: &mut Report) {
        let (Some(cb), Some(banks)) = (ctx.clustered_body, ctx.vreg_bank) else {
            return;
        };

        // Def positions per register, for reaching-def queries.
        let mut defs_of: Vec<Vec<usize>> = vec![Vec::new(); cb.n_vregs()];
        let mut use_count = vec![0usize; cb.n_vregs()];
        for op in &cb.ops {
            if let Some(d) = op.def {
                defs_of[d.index()].push(op.id.index());
            }
            for &u in &op.uses {
                use_count[u.index()] += 1;
            }
        }

        // Duplicate detection: (reaching producer, destination bank) → copies.
        // BTreeMap so duplicate-copy findings are emitted in a stable order
        // (the report feeds serialized output and golden files).
        let mut sources: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();

        for op in &cb.ops {
            if !op.opcode.is_copy() {
                continue;
            }
            let loc = SourceLoc::op(op.id);
            let (Some(d), [src]) = (op.def, op.uses.as_slice()) else {
                report.push(Diagnostic::new(
                    LintCode::Copy004,
                    Stage::Copies,
                    loc,
                    format!(
                        "copy op{} is malformed: expected exactly one def and one \
                         use, found def {:?} and {} use(s)",
                        op.id.index(),
                        op.def,
                        op.uses.len()
                    ),
                ));
                continue;
            };
            let src = *src;

            if banks[d.index()] == banks[src.index()] {
                report.push(Diagnostic::new(
                    LintCode::Copy004,
                    Stage::Copies,
                    loc.in_cluster(banks[d.index()]),
                    format!(
                        "copy op{} moves v{} to v{} within bank {} — a copy must \
                         cross banks",
                        op.id.index(),
                        src.index(),
                        d.index(),
                        banks[d.index()].index()
                    ),
                ));
            }
            if cb.class_of(d) != cb.class_of(src) {
                report.push(Diagnostic::new(
                    LintCode::Copy004,
                    Stage::Copies,
                    loc,
                    format!(
                        "copy op{} changes register class: v{} is {:?}, v{} is {:?}",
                        op.id.index(),
                        src.index(),
                        cb.class_of(src),
                        d.index(),
                        cb.class_of(d)
                    ),
                ));
            }
            if use_count[d.index()] == 0 && !cb.live_out.contains(&d) {
                report.push(Diagnostic::new(
                    LintCode::Copy004,
                    Stage::Copies,
                    loc,
                    format!(
                        "copy op{} is orphaned: its result v{} is never read and \
                         not live-out",
                        op.id.index(),
                        d.index()
                    ),
                ));
            }

            // Reaching producer of the source (textual semantics, wrapping to
            // the last def for use-before-def recurrences), mirroring copy
            // insertion's sharing key. Invariant sources should have been
            // hoisted, not copied in the kernel.
            let srcdefs = &defs_of[src.index()];
            match srcdefs
                .iter()
                .copied()
                .rfind(|&p| p < op.id.index())
                .or(srcdefs.last().copied())
            {
                Some(producer) => {
                    sources
                        .entry((producer, banks[d.index()].index()))
                        .or_default()
                        .push(op.id.index());
                }
                None => {
                    report.push(Diagnostic::new(
                        LintCode::Copy004,
                        Stage::Copies,
                        loc,
                        format!(
                            "copy op{} reads loop-invariant v{} in the kernel — \
                             invariant copies must be hoisted out of the loop",
                            op.id.index(),
                            src.index()
                        ),
                    ));
                }
            }

            // COPY005: the rebuilt DDG must wire producer → copy → consumers,
            // and the copy's out-edges must carry the machine's copy latency.
            if let Some(cddg) = ctx.cddg {
                let has_producer_edge = cddg
                    .preds(op.id)
                    .any(|e| e.kind == DepKind::Flow && cb.op(e.from).def == Some(src));
                if !srcdefs.is_empty() && !has_producer_edge {
                    report.push(Diagnostic::new(
                        LintCode::Copy005,
                        Stage::Copies,
                        loc,
                        format!(
                            "rebuilt DDG has no flow edge from v{}'s producer into \
                             copy op{}",
                            src.index(),
                            op.id.index()
                        ),
                    ));
                }
                let copy_lat = ctx.machine.latencies.of(op.opcode) as i64;
                for e in cddg.succs(op.id) {
                    if e.kind == DepKind::Flow && e.latency != copy_lat {
                        report.push(Diagnostic::new(
                            LintCode::Copy005,
                            Stage::Copies,
                            loc,
                            format!(
                                "flow edge op{}→op{} carries latency {} but the \
                                 machine's copy latency is {copy_lat}",
                                op.id.index(),
                                e.to.index(),
                                e.latency
                            ),
                        ));
                    }
                }
            }
        }

        for ((producer, bank), copies) in sources {
            if copies.len() > 1 {
                report.push(Diagnostic::new(
                    LintCode::Copy004,
                    Stage::Copies,
                    SourceLoc::op(vliw_ir::OpId(copies[1] as u32))
                        .in_cluster(vliw_machine::ClusterId(bank as u32)),
                    format!(
                        "ops {copies:?} all copy the value defined at op{producer} \
                         into bank {bank}; copies of one value into one bank must \
                         be shared"
                    ),
                ));
            }
        }
    }
}
