//! The cross-stage artifact bundle the lint passes inspect.
//!
//! Every field beyond the first three is optional: a pass that needs an
//! artifact that isn't present simply does nothing, so the same
//! [`Analyzer`](crate::Analyzer) runs unchanged at any pipeline stage — the
//! driver gates with a partially-filled bundle right after partitioning,
//! then again with the full bundle after the clustered reschedule.

use crate::joint_lints::JointClaim;
use vliw_core::{Partition, PartitionConfig, RcgGraph};
use vliw_ddg::{Ddg, SlackInfo};
use vliw_ir::Loop;
use vliw_machine::{ClusterId, MachineDesc};
use vliw_sched::{FlatProgram, Schedule};

/// Borrowed views of everything the pipeline has produced so far.
#[derive(Clone, Copy)]
pub struct Artifacts<'a> {
    /// The original (pre-copy-insertion) loop body.
    pub body: &'a Loop,
    /// The clustered target machine.
    pub machine: &'a MachineDesc,
    /// RCG weighting constants the partition was built with.
    pub cfg: &'a PartitionConfig,
    /// Ideal schedule on the monolithic twin (§4.1).
    pub ideal: Option<&'a Schedule>,
    /// Per-op slack of the original body's DDG.
    pub slack: Option<&'a SlackInfo>,
    /// The register component graph (present for RCG-based partitioners).
    pub rcg: Option<&'a RcgGraph>,
    /// The bank assignment.
    pub partition: Option<&'a Partition>,
    /// The rewritten body after copy insertion (and any spill rounds).
    pub clustered_body: Option<&'a Loop>,
    /// Cluster per operation of `clustered_body`.
    pub cluster_of: Option<&'a [ClusterId]>,
    /// Bank per virtual register of `clustered_body`.
    pub vreg_bank: Option<&'a [ClusterId]>,
    /// DDG rebuilt over `clustered_body`.
    pub cddg: Option<&'a Ddg>,
    /// The clustered modulo schedule.
    pub clustered_sched: Option<&'a Schedule>,
    /// Flat prelude/kernel/postlude expansion, if already materialised
    /// (the expansion lint expands on the fly otherwise).
    pub flat: Option<&'a FlatProgram>,
    /// The joint (II, slot, bank) solver's witness and claims, when the
    /// joint partitioner produced the clustered schedule.
    pub joint: Option<JointClaim<'a>>,
}

impl<'a> Artifacts<'a> {
    /// A bundle holding only the inputs every pipeline run starts from.
    pub fn new(body: &'a Loop, machine: &'a MachineDesc, cfg: &'a PartitionConfig) -> Self {
        Artifacts {
            body,
            machine,
            cfg,
            ideal: None,
            slack: None,
            rcg: None,
            partition: None,
            clustered_body: None,
            cluster_of: None,
            vreg_bank: None,
            cddg: None,
            clustered_sched: None,
            flat: None,
            joint: None,
        }
    }

    /// Attach the ideal schedule and its slack information.
    pub fn with_ideal(mut self, ideal: &'a Schedule, slack: &'a SlackInfo) -> Self {
        self.ideal = Some(ideal);
        self.slack = Some(slack);
        self
    }

    /// Attach the register component graph.
    pub fn with_rcg(mut self, rcg: &'a RcgGraph) -> Self {
        self.rcg = Some(rcg);
        self
    }

    /// Attach the bank assignment.
    pub fn with_partition(mut self, partition: &'a Partition) -> Self {
        self.partition = Some(partition);
        self
    }

    /// Attach the copy-inserted loop with its placement metadata.
    pub fn with_clustered(
        mut self,
        body: &'a Loop,
        cluster_of: &'a [ClusterId],
        vreg_bank: &'a [ClusterId],
    ) -> Self {
        self.clustered_body = Some(body);
        self.cluster_of = Some(cluster_of);
        self.vreg_bank = Some(vreg_bank);
        self
    }

    /// Attach the rebuilt DDG over the clustered body.
    pub fn with_cddg(mut self, cddg: &'a Ddg) -> Self {
        self.cddg = Some(cddg);
        self
    }

    /// Attach the clustered modulo schedule.
    pub fn with_schedule(mut self, sched: &'a Schedule) -> Self {
        self.clustered_sched = Some(sched);
        self
    }

    /// Attach a materialised flat expansion.
    pub fn with_flat(mut self, flat: &'a FlatProgram) -> Self {
        self.flat = Some(flat);
        self
    }

    /// Attach the joint solver's witness and claims.
    pub fn with_joint(mut self, claim: JointClaim<'a>) -> Self {
        self.joint = Some(claim);
        self
    }
}
