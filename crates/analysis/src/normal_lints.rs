//! Alpha-canonicalization lints (`NRM001`–`NRM003`): self-checks over the
//! normal form that `vliw-normal` computes and that the serve cache keys on.
//!
//! * `NRM001` — the canonical form must be a projection: canonicalizing a
//!   canonical body must reproduce it (body and hash) exactly.
//! * `NRM002` — the structural hash and the equivalence checker must agree:
//!   generated isomorphic variants keep the hash and yield a checkable
//!   witness; a genuine perturbation must change the hash.
//! * `NRM003` — canonicalization must preserve semantics under the
//!   `vliw-sim` scalar reference: memory compared array-by-array (array
//!   order is semantic — `init_memory` seeds by index), live-outs compared
//!   through the witness renaming. Trip-count proportional, so like the
//!   dynamic oracle it is opt-in: the driver's `simulate` path and
//!   `vliw-lint --canon` call [`canonical_semantics_diags`] explicitly.

use crate::artifacts::Artifacts;
use crate::diag::{Diagnostic, LintCode, Report, SourceLoc, Stage};
use vliw_ir::Loop;
use vliw_normal::{
    alpha_equivalent, canonicalize, check_witness, perturb, structural_hash, variant,
};

/// Seeds for the `NRM002` variant probe. Kept tiny: the pass runs inside
/// every first-stage gate, so this is a smoke of the engine's invariants,
/// not the corpus-scale acceptance test.
const VARIANT_SEEDS: [u64; 2] = [1, 97];

/// Static canonicalization self-checks, registered in the default
/// [`Analyzer`](crate::passes::Analyzer) registry. Runs only at the first
/// gate (before clustering artifacts exist) so one pipeline run lints the
/// normal form exactly once.
pub struct NormalFormPass;

impl crate::passes::LintPass for NormalFormPass {
    fn name(&self) -> &'static str {
        "normal-form"
    }

    fn run(&self, ctx: &Artifacts<'_>, report: &mut Report) {
        if ctx.clustered_body.is_some() {
            return;
        }
        // The canonicalizer assumes well-formed IR; on a broken body the
        // IR pass already reports the real problem, so stand down.
        if vliw_ir::verify_loop(ctx.body).is_err() {
            return;
        }
        let c = canonicalize(ctx.body);

        // NRM001: idempotence, body and hash.
        let again = canonicalize(&c.body);
        if again.body != c.body || again.hash != c.hash {
            report.push(Diagnostic::new(
                LintCode::Nrm001,
                Stage::Normal,
                SourceLoc::default(),
                format!(
                    "canonicalization is not idempotent: re-canonicalizing the normal form \
                     gives hash {} (expected {})",
                    again.hash.hex(),
                    c.hash.hex()
                ),
            ));
        }

        // NRM002: hash/equivalence agreement on isomorphic variants and on
        // a genuine perturbation.
        for seed in VARIANT_SEEDS {
            let v = variant(ctx.body, seed);
            let vh = structural_hash(&v);
            if vh != c.hash {
                report.push(Diagnostic::new(
                    LintCode::Nrm002,
                    Stage::Normal,
                    SourceLoc::default(),
                    format!(
                        "isomorphic variant (seed {seed}) hashes to {} instead of {}",
                        vh.hex(),
                        c.hash.hex()
                    ),
                ));
                continue;
            }
            match alpha_equivalent(ctx.body, &v) {
                None => report.push(Diagnostic::new(
                    LintCode::Nrm002,
                    Stage::Normal,
                    SourceLoc::default(),
                    format!(
                        "variant (seed {seed}) shares hash {} but the equivalence checker \
                         finds no witness",
                        c.hash.hex()
                    ),
                )),
                Some(w) => {
                    if let Err(e) = check_witness(ctx.body, &v, &w) {
                        report.push(Diagnostic::new(
                            LintCode::Nrm002,
                            Stage::Normal,
                            SourceLoc::default(),
                            format!("variant (seed {seed}) witness fails verification: {e}"),
                        ));
                    }
                }
            }
        }
        if let Some(p) = perturb(ctx.body, 5) {
            if structural_hash(&p) == c.hash {
                report.push(Diagnostic::new(
                    LintCode::Nrm002,
                    Stage::Normal,
                    SourceLoc::default(),
                    format!(
                        "perturbed loop still hashes to {} — the hash is blind to a \
                         semantic change",
                        c.hash.hex()
                    ),
                ));
            }
        }
    }
}

/// `NRM003`: run the scalar reference over `body` and its canonical form
/// and report any bit-level divergence. Memory is compared index-by-index
/// (canonicalization preserves array order and length); live-outs are
/// located through the witness renaming. Cost is proportional to the trip
/// count, so callers opt in (driver `simulate` path, `vliw-lint --canon`).
pub fn canonical_semantics_diags(body: &Loop) -> Vec<Diagnostic> {
    use vliw_sim::reference::run_reference;

    let c = canonicalize(body);
    let orig = run_reference(body);
    let canon = run_reference(&c.body);
    let mut out = Vec::new();
    let diag =
        |msg: String, loc: SourceLoc| Diagnostic::new(LintCode::Nrm003, Stage::Normal, loc, msg);

    if orig.memory.len() != canon.memory.len() {
        out.push(diag(
            format!(
                "canonical form has {} arrays, original has {}",
                canon.memory.len(),
                orig.memory.len()
            ),
            SourceLoc::default(),
        ));
        return out;
    }
    for (k, (a, b)) in orig.memory.iter().zip(&canon.memory).enumerate() {
        if a.len() != b.len() {
            out.push(diag(
                format!("array {k} length changed: {} vs {}", a.len(), b.len()),
                SourceLoc::default(),
            ));
            continue;
        }
        if let Some(i) = a.iter().zip(b).position(|(x, y)| !x.bits_eq(*y)) {
            out.push(diag(
                format!(
                    "memory diverges after canonicalization: array {k}[{i}] is {:?} in the \
                     original, {:?} in the normal form",
                    a[i], b[i]
                ),
                SourceLoc::default().at_cycle(i as i64),
            ));
        }
    }
    for (p, &v) in body.live_out.iter().enumerate() {
        let cv = vliw_ir::VReg(c.witness.vreg_to_canon[v.index()]);
        let Some(cp) = c.body.live_out.iter().position(|&r| r == cv) else {
            out.push(diag(
                format!("live-out {v:?} has no image in the canonical form"),
                SourceLoc::vreg(v),
            ));
            continue;
        };
        if !orig.live_out[p].bits_eq(canon.live_out[cp]) {
            out.push(diag(
                format!(
                    "live-out {v:?} diverges after canonicalization: {:?} vs {:?}",
                    orig.live_out[p], canon.live_out[cp]
                ),
                SourceLoc::vreg(v),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::LintPass;
    use vliw_machine::MachineDesc;

    fn first_gate_report(l: &Loop) -> Report {
        let machine = MachineDesc::embedded(4, 4);
        let cfg = vliw_core::PartitionConfig::default();
        let ctx = Artifacts::new(l, &machine, &cfg);
        let mut r = Report::default();
        NormalFormPass.run(&ctx, &mut r);
        r
    }

    #[test]
    fn corpus_is_clean_under_normal_form_lints() {
        for l in vliw_loopgen::corpus().iter().take(24) {
            let r = first_gate_report(l);
            assert!(!r.has_errors(), "{}: {}", l.name, r.render_text());
            assert!(canonical_semantics_diags(l).is_empty(), "{}", l.name);
        }
    }

    #[test]
    fn pass_skips_later_gates() {
        let corpus = vliw_loopgen::corpus();
        let l = &corpus[0];
        let machine = MachineDesc::embedded(4, 4);
        let cfg = vliw_core::PartitionConfig::default();
        let mut ctx = Artifacts::new(l, &machine, &cfg);
        let clustered = l.clone();
        ctx.clustered_body = Some(&clustered);
        let mut r = Report::default();
        NormalFormPass.run(&ctx, &mut r);
        assert!(r.diags.is_empty());
    }
}
