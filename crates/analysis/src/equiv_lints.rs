//! Dynamic-oracle wiring (`SIM006`): divergences found by the
//! cycle-accurate simulator flow through the same [`Diagnostic`] currency
//! as the static lints, so one report path renders both.

use crate::artifacts::Artifacts;
use crate::diag::{Diagnostic, LintCode, Report, SourceLoc, Stage};
use vliw_sim::{equivalence_failures, EquivError};

/// Convert one equivalence failure into a diagnostic.
pub fn equiv_diagnostic(err: &EquivError) -> Diagnostic {
    let loc = match err {
        EquivError::Memory { index, .. } => SourceLoc::default().at_cycle(*index as i64),
        _ => SourceLoc::default(),
    };
    Diagnostic::new(
        LintCode::Sim006,
        Stage::Sim,
        loc,
        format!("pipelined execution diverges from the scalar reference: {err}"),
    )
}

impl From<&EquivError> for Diagnostic {
    fn from(err: &EquivError) -> Self {
        equiv_diagnostic(err)
    }
}

/// Runs the clustered schedule through the cycle-accurate simulator and
/// compares bit-for-bit against the scalar reference. Not part of the
/// default registry: its cost is proportional to the trip count, so the
/// `vliw-lint` binary and the driver's `simulate` path opt in explicitly.
pub struct DynamicOraclePass;

impl crate::passes::LintPass for DynamicOraclePass {
    fn name(&self) -> &'static str {
        "dynamic-oracle"
    }

    fn run(&self, ctx: &Artifacts<'_>, report: &mut Report) {
        let (Some(cb), Some(sched)) = (ctx.clustered_body, ctx.clustered_sched) else {
            return;
        };
        for err in equivalence_failures(cb, sched, &ctx.machine.latencies) {
            report.push(equiv_diagnostic(&err));
        }
    }
}
