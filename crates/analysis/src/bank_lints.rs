//! Bank-assignment legality lints (`BANK001`–`BANK003`) and per-bank
//! register-pressure accounting (`PRES002`).

use crate::artifacts::Artifacts;
use crate::diag::{Diagnostic, LintCode, Report, SourceLoc, Stage};
use vliw_ir::RegClass;
use vliw_regalloc::{kernel_live_ranges, max_pressure, LiveRange};

/// Checks operand reachability and bank accounting: every bank index in
/// range (`BANK002`), every operand of the clustered body local to its
/// operation's cluster (`BANK001`), and — advisory — the bank populations
/// not grossly imbalanced when the balance penalty was on (`BANK003`).
pub struct BankPass;

impl crate::passes::LintPass for BankPass {
    fn name(&self) -> &'static str {
        "bank-legality"
    }

    fn run(&self, ctx: &Artifacts<'_>, report: &mut Report) {
        let n_banks = ctx.machine.n_clusters();

        if let Some(p) = ctx.partition {
            for (i, b) in p.bank_of.iter().enumerate() {
                if b.index() >= n_banks {
                    report.push(Diagnostic::new(
                        LintCode::Bank002,
                        Stage::Partition,
                        SourceLoc::vreg(vliw_ir::VReg(i as u32)).in_cluster(*b),
                        format!(
                            "v{i} assigned to bank {} but the machine has {} cluster(s)",
                            b.index(),
                            n_banks
                        ),
                    ));
                }
            }

            // BANK003 (warn): with the balance penalty enabled the greedy
            // assignment is supposed to "spread the symbolic registers
            // somewhat evenly"; one bank soaking up ≥85% of a non-trivial
            // register set on a multi-cluster machine means the penalty
            // did nothing.
            let sizes = p.sizes();
            let total: usize = sizes.iter().sum();
            if ctx.cfg.balance_factor > 0.0 && n_banks > 1 && total >= 8 {
                if let Some((heaviest, &count)) = sizes.iter().enumerate().max_by_key(|&(_, c)| *c)
                {
                    let frac = count as f64 / total as f64;
                    if frac >= 0.85 {
                        report.push(Diagnostic::new(
                            LintCode::Bank003,
                            Stage::Partition,
                            SourceLoc::default()
                                .in_cluster(vliw_machine::ClusterId(heaviest as u32)),
                            format!(
                                "bank {heaviest} holds {count} of {total} registers \
                                 ({:.0}%) despite balance_factor {}",
                                100.0 * frac,
                                ctx.cfg.balance_factor
                            ),
                        ));
                    }
                }
            }
        }

        if let Some(banks) = ctx.vreg_bank {
            for (i, b) in banks.iter().enumerate() {
                if b.index() >= n_banks {
                    report.push(Diagnostic::new(
                        LintCode::Bank002,
                        Stage::Copies,
                        SourceLoc::vreg(vliw_ir::VReg(i as u32)).in_cluster(*b),
                        format!(
                            "clustered v{i} assigned to bank {} but the machine has \
                             {} cluster(s)",
                            b.index(),
                            n_banks
                        ),
                    ));
                }
            }
        }

        // BANK001: after copy insertion, every operand must be local.
        let (Some(cb), Some(cluster_of), Some(banks)) =
            (ctx.clustered_body, ctx.cluster_of, ctx.vreg_bank)
        else {
            return;
        };
        for op in &cb.ops {
            let c = cluster_of[op.id.index()];
            if !op.opcode.is_copy() {
                for &u in &op.uses {
                    if banks[u.index()] != c {
                        report.push(Diagnostic::new(
                            LintCode::Bank001,
                            Stage::Copies,
                            SourceLoc::op(op.id).in_cluster(c),
                            format!(
                                "{} reads v{} from bank {} but executes on cluster \
                                 {} with no copy feeding it",
                                op.opcode.mnemonic(),
                                u.index(),
                                banks[u.index()].index(),
                                c.index()
                            ),
                        ));
                    }
                }
            }
            if let Some(d) = op.def {
                if banks[d.index()] != c {
                    report.push(Diagnostic::new(
                        LintCode::Bank001,
                        Stage::Copies,
                        SourceLoc::op(op.id).in_cluster(c),
                        format!(
                            "{} defines v{} into bank {} but executes on cluster {}",
                            op.opcode.mnemonic(),
                            d.index(),
                            banks[d.index()].index(),
                            c.index()
                        ),
                    ));
                }
            }
        }
    }
}

/// Checks per-bank, per-class MaxLive against the machine's bank capacity
/// (`PRES002`): a bank whose simultaneous live count exceeds its registers
/// cannot be coloured without spilling.
pub struct PressurePass;

impl crate::passes::LintPass for PressurePass {
    fn name(&self) -> &'static str {
        "bank-pressure"
    }

    fn run(&self, ctx: &Artifacts<'_>, report: &mut Report) {
        let (Some(cb), Some(banks), Some(cddg), Some(sched)) = (
            ctx.clustered_body,
            ctx.vreg_bank,
            ctx.cddg,
            ctx.clustered_sched,
        ) else {
            return;
        };
        let lat = &ctx.machine.latencies;
        let (unroll, ranges) =
            kernel_live_ranges(cb, cddg, sched, |op| lat.of(cb.op(op).opcode) as i64);
        for (bank_idx, cluster) in ctx.machine.clusters.iter().enumerate() {
            for class in [RegClass::Int, RegClass::Float] {
                let group: Vec<LiveRange> = ranges
                    .iter()
                    .filter(|r| {
                        banks
                            .get(r.vreg.index())
                            .is_some_and(|b| b.index() == bank_idx)
                            && cb.class_of(r.vreg) == class
                    })
                    .cloned()
                    .collect();
                let need = max_pressure(&group);
                let cap = match class {
                    RegClass::Int => cluster.int_regs,
                    RegClass::Float => cluster.float_regs,
                };
                if need > cap {
                    report.push(Diagnostic::new(
                        LintCode::Pres002,
                        Stage::Pressure,
                        SourceLoc::default().in_cluster(vliw_machine::ClusterId(bank_idx as u32)),
                        format!(
                            "bank {bank_idx} {class:?} MaxLive {need} exceeds capacity \
                             {cap} (MVE unroll {unroll}); colouring must spill"
                        ),
                    ));
                }
            }
        }
    }
}
