//! RCG consistency lints (`RCG001`–`RCG004`): the register component graph
//! must mirror the ideal schedule it was built from.
//!
//! The pass re-derives every expected edge weight from first principles —
//! attraction for each def/use pair (§4.1), repulsion for each pair of defs
//! sharing an ideal kernel row — deliberately *not* by calling
//! `vliw_core::build_rcg`, so a bug or corruption in the production builder
//! cannot hide from its own checker.

use crate::artifacts::Artifacts;
use crate::diag::{Diagnostic, LintCode, Report, SourceLoc, Stage};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use vliw_ir::VReg;

/// Absolute tolerance for comparing accumulated f64 edge weights.
const TOL: f64 = 1e-6;

/// Checks the RCG against an independent re-derivation from the ideal
/// schedule. Needs `ideal`, `slack` and `rcg`; skips otherwise (the
/// non-RCG partitioners never build the graph).
pub struct RcgPass;

#[derive(Default, Clone, Copy)]
struct Expected {
    attr: f64,
    rep: f64,
    row: Option<u32>,
}

impl crate::passes::LintPass for RcgPass {
    fn name(&self) -> &'static str {
        "rcg-consistency"
    }

    fn run(&self, ctx: &Artifacts<'_>, report: &mut Report) {
        let (Some(ideal), Some(slack), Some(g)) = (ctx.ideal, ctx.slack, ctx.rcg) else {
            return;
        };
        let body = ctx.body;

        // RCG002: the adjacency must be symmetric — a one-sided weight means
        // the graph structure itself is corrupt and the weight comparison
        // below would chase a phantom.
        for a_idx in 0..g.n_nodes() {
            let a = VReg(a_idx as u32);
            for &(b, w) in g.neighbours(a) {
                if b.index() > a_idx {
                    let back = g.edge_weight(b, a);
                    if (back - w).abs() > TOL {
                        report.push(Diagnostic::new(
                            LintCode::Rcg002,
                            Stage::Rcg,
                            SourceLoc::vreg(a),
                            format!(
                                "edge v{}—v{} is asymmetric: {:.4} forward, {:.4} back",
                                a_idx,
                                b.index(),
                                w,
                                back
                            ),
                        ));
                    }
                }
            }
        }

        // Re-derive the expected weights, mirroring §4.1 / §5.
        let density = body.n_ops() as f64 / ideal.ii as f64;
        let depth = body.nesting_depth;
        let imp = |opidx: usize| {
            ctx.cfg.importance(
                slack.flexibility(vliw_ir::OpId(opidx as u32)),
                density,
                depth,
            )
        };
        let key = |a: VReg, b: VReg| {
            let (x, y) = (a.0.min(b.0), a.0.max(b.0));
            (x, y)
        };
        let mut expected: HashMap<(u32, u32), Expected> = HashMap::new();

        // Attraction: def—use pairs within each operation.
        for op in &body.ops {
            let Some(d) = op.def else { continue };
            let w = imp(op.id.index());
            let mut seen: Vec<VReg> = Vec::with_capacity(2);
            for &s in &op.uses {
                if s == d || seen.contains(&s) {
                    continue;
                }
                seen.push(s);
                expected.entry(key(d, s)).or_default().attr += w;
            }
        }

        // Repulsion: pairs of defs in the same ideal kernel row. Sorted row
        // order (BTreeMap) keeps the f64 accumulation below — and the row a
        // finding reports — identical across runs, mirroring the production
        // builder in `vliw_core::build_rcg`.
        if ctx.cfg.repulse_factor > 0.0 {
            let mut by_row: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
            for op in &body.ops {
                if op.def.is_some() {
                    by_row
                        .entry(ideal.row(op.id))
                        .or_default()
                        .push(op.id.index());
                }
            }
            for (&row, ops) in &by_row {
                for (i, &a) in ops.iter().enumerate() {
                    for &b in &ops[i + 1..] {
                        let (da, db) = (body.ops[a].def.unwrap(), body.ops[b].def.unwrap());
                        if da == db {
                            continue;
                        }
                        let e = expected.entry(key(da, db)).or_default();
                        e.rep -= ctx.cfg.repulse_factor * imp(a).min(imp(b));
                        e.row = Some(row);
                    }
                }
            }
        }

        // Compare over the union of derived and actual edges.
        let mut keys: BTreeSet<(u32, u32)> = expected.keys().copied().collect();
        for (a, b, _) in g.edges() {
            keys.insert((a.0, b.0));
        }
        for (ai, bi) in keys {
            let (a, b) = (VReg(ai), VReg(bi));
            let e = expected.get(&(ai, bi)).copied().unwrap_or_default();
            let want = e.attr + e.rep;
            let got = g.edge_weight(a, b);
            let diff = got - want;
            if diff.abs() <= TOL {
                continue;
            }
            let d = if e.attr == 0.0 && e.rep == 0.0 {
                Diagnostic::new(
                    LintCode::Rcg004,
                    Stage::Rcg,
                    SourceLoc::vreg(a),
                    format!(
                        "edge v{ai}—v{bi} (weight {got:.4}) has no def/use or \
                         same-row justification"
                    ),
                )
            } else if diff > 0.0 && e.rep < 0.0 {
                let mut loc = SourceLoc::vreg(a);
                if let Some(row) = e.row {
                    loc = loc.at_cycle(row as i64);
                }
                Diagnostic::new(
                    LintCode::Rcg003,
                    Stage::Rcg,
                    loc,
                    format!(
                        "v{ai} and v{bi} are defined in the same ideal kernel row \
                         but the repulsion contribution is missing: expected \
                         weight {want:.4}, found {got:.4}"
                    ),
                )
            } else if diff < 0.0 && e.attr > 0.0 {
                Diagnostic::new(
                    LintCode::Rcg001,
                    Stage::Rcg,
                    SourceLoc::vreg(a),
                    format!(
                        "def/use pair v{ai}—v{bi} lacks its attraction weight: \
                         expected {want:.4}, found {got:.4}"
                    ),
                )
            } else {
                Diagnostic::new(
                    LintCode::Rcg004,
                    Stage::Rcg,
                    SourceLoc::vreg(a),
                    format!(
                        "edge v{ai}—v{bi} weight {got:.4} disagrees with its \
                         derivation {want:.4}"
                    ),
                )
            };
            report.push(d);
        }
    }
}
