//! Mutation tests: corrupt a known-good pipeline artifact in one targeted
//! way and assert the analyzer catches it with the *expected* stable lint
//! code. Each code the sanitizer advertises is proven to fire here, not
//! just to exist.

use vliw_analysis::{analyze, Artifacts, LintCode};
use vliw_core::{
    assign_banks_caps, build_rcg, insert_copies, round_robin_partition, PartitionConfig,
};
use vliw_ddg::{build_ddg, compute_slack, Ddg};
use vliw_ir::{Loop, VReg};
use vliw_loopgen::Family;
use vliw_machine::ClusterId;
use vliw_machine::MachineDesc;
use vliw_sched::{expand, schedule_loop, ImsConfig, SchedProblem, Schedule};

/// Everything the full §4 pipeline produces for one loop on one machine,
/// owned so each test can corrupt its own copy.
struct Good {
    body: Loop,
    machine: MachineDesc,
    cfg: PartitionConfig,
    ideal: Schedule,
    slack: vliw_ddg::SlackInfo,
    rcg: vliw_core::RcgGraph,
    partition: vliw_core::Partition,
    clustered_body: Loop,
    cluster_of: Vec<ClusterId>,
    vreg_bank: Vec<ClusterId>,
    cddg: Ddg,
    sched: Schedule,
}

fn pipeline(body: Loop, machine: MachineDesc, round_robin: bool) -> Good {
    let cfg = PartitionConfig::default();
    let ims = ImsConfig::default();
    let ideal_machine =
        MachineDesc::monolithic(machine.issue_width()).with_latencies(machine.latencies.clone());
    let ddg = build_ddg(&body, &machine.latencies);
    let ideal_problem = SchedProblem::ideal(&body, &ideal_machine);
    let ideal = schedule_loop(&ideal_problem, &ddg, &ims).expect("ideal schedules");
    let slack = compute_slack(&ddg, |op| machine.latencies.of(body.op(op).opcode) as i64);
    let rcg = build_rcg(&body, &ideal, &slack, &cfg);
    let partition = if round_robin {
        round_robin_partition(body.n_vregs(), machine.n_clusters())
    } else {
        let caps: Vec<usize> = machine.clusters.iter().map(|c| c.n_fus).collect();
        assign_banks_caps(&rcg, &caps, &cfg)
    };
    let clustered = insert_copies(&body, &partition);
    assert!(clustered.all_operands_local());
    let cddg = build_ddg(&clustered.body, &machine.latencies);
    let problem = SchedProblem::clustered(&clustered.body, &machine, &clustered.cluster_of);
    let sched = schedule_loop(&problem, &cddg, &ims).expect("clustered schedules");
    Good {
        body,
        machine,
        cfg,
        ideal,
        slack,
        rcg,
        partition,
        clustered_body: clustered.body,
        cluster_of: clustered.cluster_of,
        vreg_bank: clustered.vreg_bank,
        cddg,
        sched,
    }
}

fn daxpy() -> Good {
    pipeline(
        Family::Daxpy.build(0, 4, 48),
        MachineDesc::embedded(4, 4),
        false,
    )
}

impl Good {
    /// Artifacts view over the front half (ideal schedule, RCG, partition).
    fn front(&self) -> Artifacts<'_> {
        Artifacts::new(&self.body, &self.machine, &self.cfg)
            .with_ideal(&self.ideal, &self.slack)
            .with_rcg(&self.rcg)
            .with_partition(&self.partition)
    }

    /// Artifacts view over the back half (clustered body and schedule).
    fn back(&self) -> Artifacts<'_> {
        Artifacts::new(&self.body, &self.machine, &self.cfg)
            .with_clustered(&self.clustered_body, &self.cluster_of, &self.vreg_bank)
            .with_cddg(&self.cddg)
            .with_schedule(&self.sched)
    }
}

#[test]
fn known_good_pipeline_is_clean() {
    let g = daxpy();
    let report = analyze(&g.front());
    assert!(
        !report.has_errors(),
        "front half:\n{}",
        report.render_text()
    );
    let report = analyze(&g.back());
    assert!(!report.has_errors(), "back half:\n{}", report.render_text());
}

/// Moving a value's bank out from under its consumers models a missing
/// copy: the operand turns foreign and BANK001 must fire.
#[test]
fn def_moved_across_banks_fires_bank001() {
    let mut g = daxpy();
    // A vreg used by a real (non-copy) op, so the foreign read is direct.
    let (op_idx, v) = g
        .clustered_body
        .ops
        .iter()
        .enumerate()
        .find_map(|(i, op)| (!op.opcode.is_copy() && !op.uses.is_empty()).then(|| (i, op.uses[0])))
        .expect("an op with operands");
    let home = g.cluster_of[op_idx];
    let foreign = ClusterId((home.0 + 1) % g.machine.n_clusters() as u32);
    g.vreg_bank[v.index()] = foreign;
    let report = analyze(&g.back());
    assert!(
        report.has_code(LintCode::Bank001),
        "expected BANK001:\n{}",
        report.render_text()
    );
}

/// Rewiring a consumer to read the copy's *source* instead of its result
/// is what "somebody dropped the copy" looks like in the dataflow.
#[test]
fn bypassed_copy_fires_bank001() {
    // Round-robin partitioning guarantees cross-bank flows, hence copies.
    let mut g = pipeline(
        Family::Daxpy.build(0, 4, 48),
        MachineDesc::embedded(4, 4),
        true,
    );
    let (copy_src, copy_dst) = g
        .clustered_body
        .ops
        .iter()
        .find_map(|op| {
            (op.opcode.is_copy() && op.def.is_some()).then(|| (op.uses[0], op.def.unwrap()))
        })
        .expect("round-robin induces at least one copy");
    let mut rewired = false;
    for op in &mut g.clustered_body.ops {
        if !op.opcode.is_copy() {
            for u in &mut op.uses {
                if *u == copy_dst {
                    *u = copy_src;
                    rewired = true;
                }
            }
        }
    }
    assert!(rewired, "copy result must have a consumer");
    let report = analyze(&g.back());
    assert!(
        report.has_code(LintCode::Bank001),
        "expected BANK001:\n{}",
        report.render_text()
    );
}

/// Shrinking the banks under a fixed schedule must trip the MaxLive
/// capacity lint.
#[test]
fn shrunken_banks_fire_pres002() {
    let mut g = daxpy();
    g.machine = g.machine.clone().with_regs_per_bank(2, 2);
    let report = analyze(&g.back());
    assert!(
        report.has_code(LintCode::Pres002),
        "expected PRES002:\n{}",
        report.render_text()
    );
}

/// Zeroing out a repulsion edge between two same-row definitions breaks
/// the §4.1 construction rule RCG003 guards.
#[test]
fn deleted_repulsion_edge_fires_rcg003() {
    let mut g = daxpy();
    let (a, b, w) = g
        .rcg
        .edges()
        .find(|&(_, _, w)| w < 0.0)
        .expect("unrolled daxpy has same-row defs, hence repulsion");
    g.rcg.bump_edge(a, b, -w); // cancel it exactly
    let report = analyze(&g.front());
    assert!(
        report.has_code(LintCode::Rcg003),
        "expected RCG003:\n{}",
        report.render_text()
    );
}

/// An edge between registers that never interact is construction noise;
/// the spurious-edge lint must flag it.
#[test]
fn spurious_edge_fires_rcg004() {
    let mut g = daxpy();
    let n = g.body.n_vregs();
    let pair = (0..n)
        .flat_map(|i| ((i + 1)..n).map(move |j| (VReg(i as u32), VReg(j as u32))))
        .find(|&(a, b)| {
            g.rcg.edge_weight(a, b) == 0.0
                && !g.body.ops.iter().any(|op| {
                    let touches = |v: VReg| op.def == Some(v) || op.uses.contains(&v);
                    touches(a) && touches(b)
                })
        })
        .expect("some disjoint register pair");
    g.rcg.bump_edge(pair.0, pair.1, 5.0);
    let report = analyze(&g.front());
    assert!(
        report.has_code(LintCode::Rcg004),
        "expected RCG004:\n{}",
        report.render_text()
    );
}

/// Turning a copy into a self-copy severs the cross-bank dataflow it was
/// inserted to carry.
#[test]
fn self_copy_fires_copy004() {
    let mut g = pipeline(
        Family::Daxpy.build(0, 4, 48),
        MachineDesc::embedded(4, 4),
        true,
    );
    let idx = g
        .clustered_body
        .ops
        .iter()
        .position(|op| op.opcode.is_copy() && op.def.is_some())
        .expect("round-robin induces at least one copy");
    let d = g.clustered_body.ops[idx].def.unwrap();
    g.clustered_body.ops[idx].uses[0] = d;
    let report = analyze(&g.back());
    assert!(
        report.has_code(LintCode::Copy004),
        "expected COPY004:\n{}",
        report.render_text()
    );
}

/// Over-subscribing an MRT row — more same-row ops on a cluster than it
/// has functional units — must fail the resource replay.
#[test]
fn oversubscribed_mrt_row_fires_sched002() {
    let mut g = daxpy();
    for t in &mut g.sched.times {
        *t = 0;
    }
    let report = analyze(&g.back());
    assert!(
        report.has_code(LintCode::Sched002),
        "expected SCHED002:\n{}",
        report.render_text()
    );
}

/// Corrupting the flat expansion (wrong iteration tag on one issue) must
/// break the `cycle = iter·II + time(op)` identity EXP005 checks.
#[test]
fn corrupted_expansion_fires_exp005() {
    let g = daxpy();
    let mut flat = expand(&g.clustered_body, &g.sched);
    let issue = flat
        .cycles
        .iter_mut()
        .flat_map(|c| c.iter_mut())
        .next()
        .expect("flat program has issues");
    issue.iter += 1;
    let mut report = vliw_analysis::Report::new();
    vliw_analysis::check_expansion(&g.clustered_body, &g.sched, &flat, &mut report);
    assert!(
        report.has_code(LintCode::Exp005),
        "expected EXP005:\n{}",
        report.render_text()
    );

    // And the untouched expansion is clean.
    let flat = expand(&g.clustered_body, &g.sched);
    let mut report = vliw_analysis::Report::new();
    vliw_analysis::check_expansion(&g.clustered_body, &g.sched, &flat, &mut report);
    assert!(!report.has_errors(), "{}", report.render_text());
}

/// A dangling operand (register index past the register file) is the
/// baseline IR corruption every stage gate must catch.
#[test]
fn out_of_range_operand_fires_ir007() {
    let mut g = daxpy();
    let n = g.body.n_vregs();
    let op = g
        .body
        .ops
        .iter_mut()
        .find(|op| !op.uses.is_empty())
        .expect("ops with operands");
    op.uses[0] = VReg(n as u32 + 7);
    let report = analyze(&g.front());
    assert!(
        report.has_code(LintCode::Ir007),
        "expected IR007:\n{}",
        report.render_text()
    );
}
