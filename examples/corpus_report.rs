//! Per-loop corpus report: the raw data behind Tables 1–2 and Figures 5–7.
//!
//! Prints one line per loop of the 211-loop corpus on a chosen machine
//! (default: the 4×4 embedded model), then the aggregates. Pass
//! `--clusters N` (2/4/8), `--copy-unit`, and/or `--limit K`.
//!
//! ```text
//! cargo run --release --example corpus_report -- --clusters 4 --limit 20
//! ```

use rcg_vliw::machine::MachineDesc;
use rcg_vliw::pipeline::{run_corpus, Histogram, PipelineConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str, default: usize| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|p| args.get(p + 1))
            .and_then(|s| s.parse().ok())
            .unwrap_or(default)
    };
    let n_clusters = get("--clusters", 4);
    let limit = get("--limit", usize::MAX);
    let copy_unit = args.iter().any(|a| a == "--copy-unit");
    let fus = 16 / n_clusters;
    let machine = if copy_unit {
        MachineDesc::copy_unit(n_clusters, fus)
    } else {
        MachineDesc::embedded(n_clusters, fus)
    };

    let mut corpus = rcg_vliw::loopgen::corpus();
    corpus.truncate(limit.min(corpus.len()));
    println!(
        "{} loops on {} — per-loop pipeline results\n",
        corpus.len(),
        machine.name
    );
    println!(
        "{:<16} {:>5} {:>8} {:>9} {:>7} {:>7} {:>7} {:>7}",
        "loop", "ops", "idealII", "clustII", "copies", "degr%", "unroll", "spills"
    );

    let results = run_corpus(&corpus, &machine, &PipelineConfig::default());
    for r in &results {
        println!(
            "{:<16} {:>5} {:>8} {:>9} {:>7} {:>6.1}% {:>7} {:>7}",
            r.name,
            r.n_ops,
            r.ideal_ii,
            r.clustered_ii,
            r.n_copies,
            r.degradation_pct(),
            r.mve_unroll,
            r.spills
        );
    }

    let degr: Vec<f64> = results.iter().map(|r| r.degradation_pct()).collect();
    let hist = Histogram::from_degradations(&degr);
    let mean_ipc_ideal = results.iter().map(|r| r.ideal_ipc).sum::<f64>() / results.len() as f64;
    let mean_ipc_clu = results.iter().map(|r| r.clustered_ipc).sum::<f64>() / results.len() as f64;
    println!("\naggregates:");
    println!("  ideal IPC     : {mean_ipc_ideal:.2}");
    println!("  clustered IPC : {mean_ipc_clu:.2}");
    println!(
        "  mean degradation: {:.1}%   zero-degradation loops: {:.1}%",
        degr.iter().sum::<f64>() / degr.len() as f64,
        hist.percent_undegraded()
    );
    println!(
        "  total spills: {}",
        results.iter().map(|r| r.spills).sum::<usize>()
    );
}
