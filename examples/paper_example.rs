//! The paper's §4.2 worked example: the `xpos` update
//!
//! ```text
//! xpos = xpos + (xvel*t) + (xaccel*t*t/2.0)
//! ```
//!
//! scheduled ideally on a 2-wide unit-latency machine (Figure 1: 7 cycles)
//! and partitioned onto two single-FU clusters (Figure 3: 9 cycles with
//! copies of r2 and r6).
//!
//! ```text
//! cargo run --release --example paper_example
//! ```

use rcg_vliw::pipeline::paper_example;

fn main() {
    let ex = paper_example();
    println!("§4.2 worked example — {}", ex.body.name);
    println!("{}", rcg_vliw::ir::printer::format_loop(&ex.body));
    println!(
        "ideal schedule span     : {} cycles (paper Figure 1: 7)",
        ex.ideal_span
    );
    println!(
        "2-bank partitioned span : {} cycles with {} copies (paper Figure 3: 9 cycles, 2 copies)",
        ex.clustered_span, ex.n_copies
    );
    println!(
        "degradation             : {} cycles ({}%)",
        ex.clustered_span - ex.ideal_span,
        100 * (ex.clustered_span - ex.ideal_span) / ex.ideal_span
    );
}
