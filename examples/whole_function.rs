//! Whole-function partitioning: one bank assignment spanning straight-line
//! code and several loops (§6.3/§7's "easily applicable to entire
//! programs").
//!
//! ```text
//! cargo run --release --example whole_function
//! ```

use rcg_vliw::ir::{FunctionBuilder, RegClass};
use rcg_vliw::machine::MachineDesc;
use rcg_vliw::pipeline::{run_function, PipelineConfig};

fn main() {
    // A little numeric kernel: prologue scales a constant, a hot inner loop
    // does a fused daxpy, a second loop reduces, an epilogue combines the
    // results. All four blocks share parameters `a`, `b` and the arrays.
    let mut f = FunctionBuilder::new("saxpy_then_dot");
    let a = f.live_in_float_val("a", 2.0);
    let bb = f.live_in_float_val("b", 0.5);
    let x = f.array("x", RegClass::Float, 1024);
    let y = f.array("y", RegClass::Float, 1024);

    let mut scaled = None;
    f.block("prologue", 1, 1, |blk| {
        let t = blk.fmul(a, bb);
        scaled = Some(t);
    });
    let scaled = scaled.unwrap();

    f.block("saxpy", 2, 96, |blk| {
        for j in 0..4i64 {
            let xv = blk.load(x, j, 4);
            let yv = blk.load(y, j, 4);
            let p = blk.fmul(scaled, xv);
            let s = blk.fadd(yv, p);
            blk.store(y, j, 4, s);
        }
    });

    let mut dot = None;
    f.block("dot", 2, 96, |blk| {
        let s = blk.live_in_float_val("s", 0.0);
        for j in 0..2i64 {
            let xv = blk.load(x, j, 2);
            let yv = blk.load(y, j, 2);
            let p = blk.fmul(xv, yv);
            blk.fadd_into(s, s, p);
        }
        blk.live_out(s);
        dot = Some(s);
    });
    let dot = dot.unwrap();

    f.block("epilogue", 1, 1, |blk| {
        let r = blk.fmul(dot, scaled);
        blk.store(x, 0, 0, r);
    });

    let func = f.finish();
    func.verify().expect("function is well-formed");

    println!(
        "function {}: {} blocks, {} ops, {} shared registers\n",
        func.name,
        func.blocks.len(),
        func.n_ops(),
        func.n_vregs()
    );
    println!(
        "{:<12} {:>6} {:>10} {:>10} {:>9} {:>7} {:>7}",
        "block", "freq", "pipelined", "ideal", "clustered", "degr%", "copies"
    );
    for machine in [
        MachineDesc::embedded(2, 8),
        MachineDesc::embedded(4, 4),
        MachineDesc::copy_unit(4, 4),
    ] {
        let r = run_function(&func, &machine, &PipelineConfig::default());
        println!("--- {}", machine.name);
        for b in &r.blocks {
            println!(
                "{:<12} {:>6.0} {:>10} {:>10} {:>9} {:>6.1}% {:>7}",
                b.name,
                b.freq,
                if b.pipelined { "yes" } else { "no" },
                b.ideal_len,
                b.clustered_len,
                b.normalized() - 100.0,
                b.n_copies
            );
        }
        println!(
            "{:<12} weighted degradation {:.1}%  total copies {}\n",
            "",
            r.weighted_normalized - 100.0,
            r.total_copies
        );
    }
}
