//! Off-line stochastic tuning of the RCG heuristic weights — the paper's §7
//! future work ("genetic algorithms, simulated annealing, or tabu search"),
//! realised as a seeded random-restart hill-climb.
//!
//! Trains on one slice of the corpus, validates on a disjoint slice, and
//! compares against the default (paper-reconstruction) weights.
//!
//! ```text
//! cargo run --release --example tune_weights [-- --restarts 4 --steps 10]
//! ```

use rcg_vliw::core::{score_config, tune_weights};
use rcg_vliw::machine::MachineDesc;
use rcg_vliw::prelude::PartitionConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str, default: usize| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|p| args.get(p + 1))
            .and_then(|s| s.parse().ok())
            .unwrap_or(default)
    };
    let restarts = get("--restarts", 3);
    let steps = get("--steps", 8);

    let corpus = rcg_vliw::loopgen::corpus();
    let train: Vec<_> = corpus.iter().step_by(7).cloned().collect(); // ~30 loops
    let validate: Vec<_> = corpus.iter().skip(3).step_by(7).cloned().collect();
    let machine = MachineDesc::embedded(4, 4);

    println!(
        "tuning RCG weights on {} training loops ({} restarts × {} steps), validating on {}\n",
        train.len(),
        restarts,
        steps,
        validate.len()
    );

    let r = tune_weights(&train, &machine, restarts, steps, 0xC0FFEE);
    println!("default weights : {:?}", PartitionConfig::default());
    println!("  training score: {:.2} (100 = ideal)", r.baseline_score);
    println!("tuned weights   : {:?}", r.config);
    println!(
        "  training score: {:.2}  ({} candidates evaluated)",
        r.score, r.evaluated
    );

    let val_default = score_config(&validate, &machine, &PartitionConfig::default());
    let val_tuned = score_config(&validate, &machine, &r.config);
    println!("\nheld-out validation:");
    println!("  default : {val_default:.2}");
    println!("  tuned   : {val_tuned:.2}");
    if val_tuned < val_default {
        println!(
            "  → tuning generalises: {:.2} points better",
            val_default - val_tuned
        );
    } else {
        println!(
            "  → tuned weights overfit the training slice (gap {:.2})",
            val_tuned - val_default
        );
    }
}
