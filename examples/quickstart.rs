//! Quickstart: pipeline one loop end to end and print every stage.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rcg_vliw::prelude::*;

fn main() {
    // 1. Build intermediate code with symbolic registers (§4 step 1):
    //    y[i] = y[i] + a*x[i], unrolled 4×.
    let mut b = LoopBuilder::new("daxpy_u4");
    let x = b.array("x", RegClass::Float, 512);
    let y = b.array("y", RegClass::Float, 512);
    let a = b.live_in_float_val("a", 2.0);
    for j in 0..4i64 {
        let xv = b.load(x, j, 4);
        let yv = b.load(y, j, 4);
        let p = b.fmul(a, xv);
        let s = b.fadd(yv, p);
        b.store(y, j, 4, s);
    }
    let body = b.finish(64);
    println!("{}", vliw_ir::printer::format_loop(&body));

    // 2. Ideal schedule on a monolithic 16-wide machine (§4 step 2).
    let machine = MachineDesc::embedded(4, 4); // 16-wide, 4 clusters of 4
    let ideal_machine = MachineDesc::monolithic(16);
    let ddg = build_ddg(&body, &machine.latencies);
    let ideal = schedule_loop(
        &SchedProblem::ideal(&body, &ideal_machine),
        &ddg,
        &ImsConfig::default(),
    )
    .expect("ideal schedule");
    println!(
        "ideal schedule: II = {}, IPC = {:.2}, {} stages",
        ideal.ii,
        ideal.ipc(body.n_ops()),
        ideal.stage_count()
    );

    // 3. Partition registers to banks via the register component graph (§5).
    let cfg = PartitionConfig::default();
    let slack = compute_slack(&ddg, |op| machine.latencies.of(body.op(op).opcode) as i64);
    let rcg = build_rcg(&body, &ideal, &slack, &cfg);
    let caps: Vec<usize> = machine.clusters.iter().map(|c| c.n_fus).collect();
    let part = assign_banks_caps(&rcg, &caps, &cfg);
    println!("partition sizes per bank: {:?}", part.sizes());

    // 4. Insert cross-bank copies and re-schedule clustered (§4 step 4).
    let clustered = insert_copies(&body, &part);
    println!(
        "copies: {} in-kernel, {} hoisted",
        clustered.n_kernel_copies, clustered.n_hoisted_copies
    );
    let cddg = build_ddg(&clustered.body, &machine.latencies);
    let problem = SchedProblem::clustered(&clustered.body, &machine, &clustered.cluster_of);
    let sched = schedule_loop(&problem, &cddg, &ImsConfig::default()).expect("clustered schedule");
    verify_schedule(&problem, &cddg, &sched).expect("schedule is legal");
    println!(
        "clustered schedule: II = {} ({}% of ideal)",
        sched.ii,
        100 * sched.ii / ideal.ii
    );
    println!("{}", sched.render_kernel(&clustered.body));

    // 5. Chaitin/Briggs per bank (§4 step 5).
    let alloc = allocate(
        &clustered.body,
        &cddg,
        &sched,
        &clustered.vreg_bank,
        &machine,
    );
    println!(
        "register allocation: MVE unroll {}, spills {}",
        alloc.unroll,
        alloc.total_spills()
    );
    for st in &alloc.stats {
        println!(
            "  bank {} {:?}: {} ranges, pressure {}, {} regs used",
            st.bank.index(),
            st.class,
            st.n_ranges,
            st.max_pressure,
            st.n_colors_used
        );
    }

    // Oracle: the pipelined, partitioned loop computes exactly what the
    // sequential original computes.
    check_equivalence(&clustered.body, &sched, &machine.latencies)
        .expect("bit-exact vs scalar reference");
    println!("simulation: bit-exact vs scalar reference ✓");
}
