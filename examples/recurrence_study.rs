//! Recurrence study: how loop-carried dependences interact with
//! partitioning — the phenomenon §6.3 credits Nystrom and Eichenberger with
//! attacking directly ("prevent inserting copies that will lengthen the
//! recurrence constraint").
//!
//! We sweep a first-order recurrence `s = a·s + x[i]` surrounded by a
//! varying amount of independent work, on a 4×4 clustered machine, and show
//! where the kernel II comes from: the recurrence (RecII), the resources
//! (ResII), or partition-induced copies.
//!
//! ```text
//! cargo run --release --example recurrence_study
//! ```

use rcg_vliw::prelude::*;

fn recurrence_loop(fill: usize) -> Loop {
    let mut b = LoopBuilder::new(format!("rec_fill{fill}"));
    let stride = (fill + 1) as i64;
    let x = b.array("x", RegClass::Float, 64 * (fill + 2));
    let y = b.array("y", RegClass::Float, 64 * (fill + 2));
    let a = b.live_in_float_val("a", 0.5);
    let s = b.live_in_float_val("s", 0.0);
    let xv = b.load(x, 0, stride);
    let t = b.fmul(a, s);
    b.fadd_into(s, t, xv);
    b.live_out(s);
    for j in 1..=fill as i64 {
        let v = b.load(x, j, stride);
        let w = b.fmul(a, v);
        let w2 = b.fadd(w, v);
        b.store(y, j, stride, w2);
    }
    b.finish(48)
}

fn main() {
    let machine = MachineDesc::embedded(4, 4);
    println!("first-order recurrence + independent fill work, 4x4 embedded\n");
    println!(
        "{:>5} {:>5} {:>7} {:>7} {:>9} {:>9} {:>7} {:>9}",
        "fill", "ops", "RecII", "ResII", "idealII", "clustII", "copies", "degr%"
    );
    for fill in [0usize, 1, 2, 4, 8, 12, 16] {
        let l = recurrence_loop(fill);
        let ddg = build_ddg(&l, &machine.latencies);
        let rec = rec_ii(&ddg);
        let res = res_ii(&l, &machine);
        let r = run_loop(&l, &machine, &PipelineConfig::default());
        println!(
            "{:>5} {:>5} {:>7} {:>7} {:>9} {:>9} {:>7} {:>8.1}%",
            fill,
            l.n_ops(),
            rec,
            res,
            r.ideal_ii,
            r.clustered_ii,
            r.n_copies,
            r.degradation_pct()
        );
    }
    println!(
        "\nWhile RecII dominates (small fill), partitioning is free: copies hide\n\
         in the recurrence slack. Once resources dominate (large fill), copies\n\
         compete for issue slots and degradation appears — exactly the regime\n\
         split the paper's Figures 5-7 histogram."
    );
}
