//! Retargetability demo: the same loop compiled for a range of machine
//! shapes, including asymmetric clusters and a TI-C6x-flavoured 8-wide DSP.
//!
//! The paper's central retargetability claim (§1, §4.1) is that the RCG
//! "abstracts away machine-dependent details into costs associated with the
//! nodes and edges of the graph" — so the same partitioner should serve any
//! cluster arrangement. This example exercises that claim.
//!
//! ```text
//! cargo run --release --example custom_machine
//! ```

use rcg_vliw::machine::{ClusterDesc, CopyModel, LatencyTable};
use rcg_vliw::prelude::*;

fn workload() -> Loop {
    // A 3-point stencil, unrolled 3× — enough ILP to care about clustering.
    let mut b = LoopBuilder::new("stencil_u3");
    let x = b.array("x", RegClass::Float, 512);
    let y = b.array("y", RegClass::Float, 512);
    let c0 = b.live_in_float_val("c0", 0.25);
    let c1 = b.live_in_float_val("c1", 0.5);
    let c2 = b.live_in_float_val("c2", 0.25);
    for j in 0..3i64 {
        let v0 = b.load(x, j, 3);
        let v1 = b.load(x, j + 1, 3);
        let v2 = b.load(x, j + 2, 3);
        let m0 = b.fmul(c0, v0);
        let m1 = b.fmul(c1, v1);
        let m2 = b.fmul(c2, v2);
        let t = b.fadd(m0, m1);
        let r = b.fadd(t, m2);
        b.store(y, j, 3, r);
    }
    b.finish(96)
}

/// A TI C6x-flavoured machine: 8-wide, two clusters of 4, one cross bus —
/// the DSP arrangement the paper cites as shipping silicon (§1, [24]).
fn ti_c6x_like() -> MachineDesc {
    MachineDesc {
        name: "8w-2x4-dsp".to_string(),
        clusters: vec![
            ClusterDesc {
                n_fus: 4,
                int_regs: 16,
                float_regs: 16,
            };
            2
        ],
        copy_model: CopyModel::CopyUnit {
            busses: 1,
            ports_per_cluster: 1,
        },
        latencies: LatencyTable::paper(),
    }
}

/// An asymmetric machine: one wide cluster and two narrow helpers.
fn asymmetric() -> MachineDesc {
    MachineDesc {
        name: "12w-asym-8+2+2".to_string(),
        clusters: vec![
            ClusterDesc {
                n_fus: 8,
                int_regs: 32,
                float_regs: 32,
            },
            ClusterDesc {
                n_fus: 2,
                int_regs: 16,
                float_regs: 16,
            },
            ClusterDesc {
                n_fus: 2,
                int_regs: 16,
                float_regs: 16,
            },
        ],
        copy_model: CopyModel::Embedded,
        latencies: LatencyTable::paper(),
    }
}

fn main() {
    let body = workload();
    let machines = vec![
        MachineDesc::monolithic(16),
        MachineDesc::embedded(2, 8),
        MachineDesc::embedded(4, 4),
        MachineDesc::copy_unit(4, 4),
        MachineDesc::embedded(8, 2),
        ti_c6x_like(),
        asymmetric(),
    ];
    println!("one stencil loop, many machines\n");
    println!(
        "{:<18} {:>6} {:>9} {:>9} {:>7} {:>8} {:>7}",
        "machine", "width", "idealII", "clustII", "copies", "degr%", "spills"
    );
    let cfg = PipelineConfig {
        simulate: true,
        ..Default::default()
    };
    for m in &machines {
        let r = run_loop(&body, m, &cfg);
        assert_eq!(r.sim_ok, Some(true), "{}: simulation mismatch", m.name);
        println!(
            "{:<18} {:>6} {:>9} {:>9} {:>7} {:>7.1}% {:>7}",
            m.name,
            m.issue_width(),
            r.ideal_ii,
            r.clustered_ii,
            r.n_copies,
            r.degradation_pct(),
            r.spills
        );
    }
    println!("\nevery row validated bit-exact against the scalar reference ✓");
}
