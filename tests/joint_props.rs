//! Cross-crate properties of the joint (II, slot, bank) solver.
//!
//! The `vliw-joint` crate carries its own brute-force oracle (every witness
//! it returns is checked against exhaustive enumeration on tiny loops);
//! these tests pin the *system-level* contracts instead:
//!
//! * a pipeline driven by `PartitionerKind::Joint` passes every cross-stage
//!   lint gate — including the JNT gates that audit the solver's own
//!   optimality claims — and stays bit-exact under simulation;
//! * the joint II never exceeds the greedy pipeline's II (the solver is
//!   seeded with the greedy incumbent, so regressing is a bug, not a
//!   heuristic outcome);
//! * claimed bounds are internally consistent (`lower_bound_ii ≤ ii`,
//!   and `optimal` ⇒ the bound is closed);
//! * a wall-clock budget is honoured within 2×, and a truncated search
//!   never claims optimality.

use proptest::prelude::*;
use rcg_vliw::joint::{solve_joint, JointConfig};
use rcg_vliw::pipeline::paper_machines;
use rcg_vliw::prelude::*;
use std::time::Duration;
use vliw_loopgen::Family;

/// The ≤12-vreg slice of the corpus the gap experiments solve on.
fn small_corpus(n: usize) -> Vec<Loop> {
    rcg_vliw::loopgen::corpus()
        .into_iter()
        .filter(|l| l.n_vregs() <= 12)
        .take(n)
        .collect()
}

#[test]
fn joint_pipeline_passes_all_lint_gates_and_simulation() {
    // LintMode::Gate (the default) panics inside run_loop at the first
    // Error-level finding in debug builds, so merely completing the sweep
    // exercises every gate; the explicit check below covers release builds.
    let corpus = small_corpus(8);
    let cfg = PipelineConfig {
        partitioner: PartitionerKind::Joint { budget_ms: 2000 },
        simulate: true,
        ..Default::default()
    };
    for machine in paper_machines() {
        for body in &corpus {
            let r = run_loop(body, &machine, &cfg);
            assert!(
                r.diagnostics.is_empty(),
                "{} on {}: joint pipeline raised {:?}",
                body.name,
                machine.name,
                r.diagnostics
            );
            assert_eq!(
                r.sim_ok,
                Some(true),
                "{} on {}: joint-partitioned result diverged from scalar reference",
                body.name,
                machine.name
            );
            assert!(r.clustered_ii >= r.ideal_ii, "{}", body.name);
        }
    }
}

#[test]
fn joint_ii_never_exceeds_greedy_and_bounds_are_consistent() {
    let corpus = small_corpus(16);
    let pcfg = PartitionConfig::default();
    let jcfg = JointConfig { budget_ms: 2000 };
    for machine in [MachineDesc::embedded(2, 8), MachineDesc::copy_unit(4, 4)] {
        for body in &corpus {
            let r = solve_joint(body, &machine, &pcfg, &jcfg);
            assert!(
                r.ii <= r.greedy_ii,
                "{} on {}: joint II {} > greedy II {}",
                body.name,
                machine.name,
                r.ii,
                r.greedy_ii
            );
            assert!(
                r.lower_bound_ii <= r.ii,
                "{} on {}: lower bound {} above achieved II {}",
                body.name,
                machine.name,
                r.lower_bound_ii,
                r.ii
            );
            if r.optimal {
                assert_eq!(
                    r.lower_bound_ii, r.ii,
                    "{} on {}: optimal claim with an open bound",
                    body.name, machine.name
                );
            }
        }
    }
}

#[test]
fn joint_budget_is_honored_within_2x() {
    // The widest-pressure loop in the corpus: enough vregs that a tight
    // budget bites, so the anytime path (greedy incumbent + honest bound)
    // is what this exercises. A solve that happens to close early is fine —
    // the wall-clock ceiling holds either way.
    let corpus = rcg_vliw::loopgen::corpus();
    let body = corpus.iter().max_by_key(|l| l.n_vregs()).unwrap();
    let machine = MachineDesc::embedded(4, 4);
    let budget_ms = 300u64;
    let r = solve_joint(
        body,
        &machine,
        &PartitionConfig::default(),
        &JointConfig { budget_ms },
    );
    assert!(
        r.stats.elapsed <= Duration::from_millis(2 * budget_ms),
        "{}: budget {budget_ms}ms, spent {:?}",
        body.name,
        r.stats.elapsed
    );
    if r.stats.elapsed > Duration::from_millis(budget_ms) {
        assert!(!r.optimal, "truncated search still claimed optimality");
    }
    assert!(r.ii <= r.greedy_ii);
    assert!(r.lower_bound_ii <= r.ii);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Random loops from every generator family: the solver's invariants
    /// hold regardless of loop shape, and its witness reschedules cleanly.
    #[test]
    fn joint_invariants_on_random_family_loops(
        fam_idx in 0usize..10,
        variant in 0usize..8,
        unroll in 1usize..4,
    ) {
        let fam = [
            Family::Daxpy, Family::Dot, Family::Stencil, Family::Rec1,
            Family::Scale, Family::IntAxpy, Family::SumSq, Family::DivMix,
            Family::Copy, Family::Mixed,
        ][fam_idx];
        let body = fam.build(variant, unroll, 32);
        let machine = MachineDesc::embedded(2, 4);
        let r = solve_joint(
            &body,
            &machine,
            &PartitionConfig::default(),
            &JointConfig { budget_ms: 1000 },
        );
        prop_assert!(r.ii <= r.greedy_ii);
        prop_assert!(r.lower_bound_ii <= r.ii);
        prop_assert!(!r.optimal || r.lower_bound_ii == r.ii);
        // The witness partition is total and its copy-inserted body has
        // exactly as many scheduled ops as the schedule claims.
        let clustered = insert_copies(&body, &r.partition);
        prop_assert_eq!(r.schedule.times.len(), clustered.body.n_ops());
        prop_assert_eq!(r.schedule.ii, r.ii);
    }
}
