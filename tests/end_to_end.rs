//! Cross-crate integration: the full §4 pipeline on corpus samples, with the
//! cycle-accurate simulation oracle switched on, across every machine model
//! the paper evaluates.

use rcg_vliw::pipeline::paper_machines;
use rcg_vliw::prelude::*;

fn sample_corpus(n: usize) -> Vec<Loop> {
    let mut c = rcg_vliw::loopgen::corpus();
    c.truncate(n);
    c
}

#[test]
fn corpus_sample_validates_on_all_six_machines() {
    let corpus = sample_corpus(12);
    let cfg = PipelineConfig {
        simulate: true,
        ..Default::default()
    };
    for machine in paper_machines() {
        for body in &corpus {
            let r = run_loop(body, &machine, &cfg);
            assert_eq!(
                r.sim_ok,
                Some(true),
                "{} on {}: pipelined result diverged from scalar reference",
                body.name,
                machine.name
            );
            assert!(r.clustered_ii >= r.ideal_ii, "{}", body.name);
            assert_eq!(r.spills, 0, "{} spilled on {}", body.name, machine.name);
        }
    }
}

#[test]
fn degradation_never_below_ideal() {
    let corpus = sample_corpus(30);
    let machine = MachineDesc::embedded(4, 4);
    for body in &corpus {
        let r = run_loop(body, &machine, &PipelineConfig::default());
        assert!(
            r.normalized >= 100.0,
            "{}: normalised {} < 100",
            body.name,
            r.normalized
        );
    }
}

#[test]
fn copy_unit_ipc_never_exceeds_ideal() {
    let corpus = sample_corpus(30);
    let machine = MachineDesc::copy_unit(4, 4);
    for body in &corpus {
        let r = run_loop(body, &machine, &PipelineConfig::default());
        assert!(
            r.clustered_ipc <= r.ideal_ipc + 1e-9,
            "{}: copy-unit IPC {} vs ideal {}",
            body.name,
            r.clustered_ipc,
            r.ideal_ipc
        );
    }
}

#[test]
fn monolithic_pipeline_is_the_identity_baseline() {
    let corpus = sample_corpus(20);
    let machine = MachineDesc::monolithic(16);
    for body in &corpus {
        let r = run_loop(body, &machine, &PipelineConfig::default());
        assert_eq!(r.ideal_ii, r.clustered_ii, "{}", body.name);
        assert_eq!(r.n_copies, 0, "{}", body.name);
    }
}

#[test]
fn all_partitioners_preserve_semantics_on_samples() {
    let corpus = sample_corpus(6);
    let machine = MachineDesc::embedded(4, 4);
    for kind in [
        PartitionerKind::Greedy,
        PartitionerKind::Bug,
        PartitionerKind::Component,
        PartitionerKind::RoundRobin,
        PartitionerKind::Iterated(2, 4),
        PartitionerKind::Exact { budget_ms: 2000 },
    ] {
        let cfg = PipelineConfig {
            partitioner: kind,
            simulate: true,
            ..Default::default()
        };
        for body in &corpus {
            let r = run_loop(body, &machine, &cfg);
            assert_eq!(
                r.sim_ok,
                Some(true),
                "{} broke {:?} semantics",
                body.name,
                kind
            );
        }
    }
}

#[test]
fn recurrence_bound_loops_partition_cheaply_on_few_clusters() {
    // A first-order recurrence has RecII 4 and little resource pressure.
    // On 2 and 4 clusters the RCG attraction keeps the cycle in one bank
    // and partitioning is free. On 8 narrow clusters the balance pressure
    // can split the cycle and lengthen it with copy latency — exactly the
    // failure mode the paper concedes ("our current greedy method does not
    // consider recurrence paths directly", §6.3) and that Nystrom and
    // Eichenberger attack. We assert the free cases and bound the rest.
    let body = rcg_vliw::loopgen::Family::Rec1.build(0, 2, 48);
    for machine in paper_machines() {
        let r = run_loop(&body, &machine, &PipelineConfig::default());
        if machine.n_clusters() <= 4 {
            assert_eq!(
                r.clustered_ii, r.ideal_ii,
                "recurrence loop degraded on {}",
                machine.name
            );
        } else {
            assert!(
                r.clustered_ii <= 3 * r.ideal_ii,
                "recurrence loop unreasonably degraded on {}: {} vs {}",
                machine.name,
                r.clustered_ii,
                r.ideal_ii
            );
        }
    }
}

#[test]
fn swing_scheduler_preserves_semantics_and_lowers_lifetimes() {
    use rcg_vliw::pipeline::SchedulerKind;
    let corpus = sample_corpus(10);
    let machine = MachineDesc::embedded(4, 4);
    let ims_cfg = PipelineConfig {
        simulate: true,
        ..Default::default()
    };
    let sms_cfg = PipelineConfig {
        scheduler: SchedulerKind::Swing,
        simulate: true,
        ..Default::default()
    };
    let mut unroll_ims = 0u32;
    let mut unroll_sms = 0u32;
    for body in &corpus {
        let a = run_loop(body, &machine, &ims_cfg);
        let b = run_loop(body, &machine, &sms_cfg);
        assert_eq!(a.sim_ok, Some(true), "{} (IMS)", body.name);
        assert_eq!(b.sim_ok, Some(true), "{} (SMS)", body.name);
        unroll_ims += a.mve_unroll;
        unroll_sms += b.mve_unroll;
    }
    // Swing scheduling must not need MORE renaming overall.
    assert!(
        unroll_sms <= unroll_ims,
        "SMS {unroll_sms} vs IMS {unroll_ims}"
    );
}

#[test]
fn physical_register_execution_is_bit_exact() {
    // The deepest oracle: partition → schedule → colour → execute on
    // PHYSICAL registers (MVE-renamed), compare with sequential reference.
    let corpus = sample_corpus(10);
    let cfg = PipelineConfig {
        simulate_physical: true,
        ..Default::default()
    };
    for machine in paper_machines() {
        for body in &corpus {
            let r = run_loop(body, &machine, &cfg);
            assert_eq!(
                r.sim_ok,
                Some(true),
                "{} on {}: physical execution diverged",
                body.name,
                machine.name
            );
        }
    }
}

#[test]
fn extended_families_survive_the_full_pipeline() {
    use rcg_vliw::loopgen::{corpus_with, CorpusSpec};
    let mut spec = CorpusSpec::extended();
    spec.n = 40;
    let corpus = corpus_with(&spec);
    let machine = MachineDesc::embedded(4, 4);
    let cfg = PipelineConfig {
        simulate: true,
        simulate_physical: true,
        ..Default::default()
    };
    for body in corpus
        .iter()
        .filter(|l| l.name.starts_with("fir") || l.name.starts_with("tridiag"))
    {
        let r = run_loop(body, &machine, &cfg);
        assert_eq!(r.sim_ok, Some(true), "{}", body.name);
    }
}

#[test]
fn chaitin_spill_loop_converges_on_tiny_banks() {
    // Shrink the banks until colouring fails, then let the build–colour–
    // spill loop insert spill code; semantics must survive (virtual AND
    // physical simulation), and colouring must eventually succeed.
    let body = rcg_vliw::loopgen::Family::Daxpy.build(0, 8, 64);
    let machine = MachineDesc::embedded(2, 8).with_regs_per_bank(25, 25);
    let cfg = PipelineConfig {
        simulate: true,
        simulate_physical: true,
        ..Default::default()
    };
    let r = run_loop(&body, &machine, &cfg);
    assert!(r.spill_rounds > 0, "expected spill rounds on 25-reg banks");
    assert_eq!(r.spills, 0, "spill loop must converge to a clean colouring");
    assert_eq!(r.sim_ok, Some(true), "spilled code must stay bit-exact");

    // Below the irreducible pressure floor the loop cannot fully converge
    // (every remaining range is a reload, an invariant or a carried value),
    // but semantics still hold and the II reflects the spill traffic.
    let floor_machine = MachineDesc::embedded(2, 8).with_regs_per_bank(14, 14);
    let cfg_v = PipelineConfig {
        simulate: true,
        ..Default::default()
    };
    let r2 = run_loop(&body, &floor_machine, &cfg_v);
    assert!(r2.spills > 0);
    assert!(
        r2.clustered_ii > r.clustered_ii,
        "spill traffic must cost II"
    );
    assert_eq!(r2.sim_ok, Some(true));
}

#[test]
fn paper_scale_banks_never_spill() {
    let corpus = sample_corpus(25);
    for machine in paper_machines() {
        for body in &corpus {
            let r = run_loop(body, &machine, &PipelineConfig::default());
            assert_eq!(r.spill_rounds, 0, "{} on {}", body.name, machine.name);
        }
    }
}

#[test]
fn full_pipeline_register_allocation_validates() {
    use rcg_vliw::regalloc::validate_allocation;
    let corpus = sample_corpus(10);
    let machine = MachineDesc::embedded(4, 4);
    let cfg = PartitionConfig::default();
    for body in &corpus {
        let ideal_m = MachineDesc::monolithic(16);
        let ddg = build_ddg(body, &machine.latencies);
        let ideal = schedule_loop(
            &SchedProblem::ideal(body, &ideal_m),
            &ddg,
            &ImsConfig::default(),
        )
        .unwrap();
        let slack = compute_slack(&ddg, |op| machine.latencies.of(body.op(op).opcode) as i64);
        let rcg = build_rcg(body, &ideal, &slack, &cfg);
        let part = assign_banks(&rcg, 4, &cfg);
        let clustered = insert_copies(body, &part);
        let cddg = build_ddg(&clustered.body, &machine.latencies);
        let sched = schedule_loop(
            &SchedProblem::clustered(&clustered.body, &machine, &clustered.cluster_of),
            &cddg,
            &ImsConfig::default(),
        )
        .unwrap();
        let alloc = allocate(
            &clustered.body,
            &cddg,
            &sched,
            &clustered.vreg_bank,
            &machine,
        );
        assert!(
            validate_allocation(
                &clustered.body,
                &cddg,
                &sched,
                &clustered.vreg_bank,
                &machine,
                &alloc
            ),
            "{}: invalid colouring",
            body.name
        );
    }
}
