//! Property-based tests over randomly generated loops.
//!
//! A loop is generated as a sequence of small "recipes" folded through the
//! builder (so it is structurally valid by construction), then pushed
//! through every stage of the pipeline. The properties are the contracts
//! each stage promises:
//!
//! * the IR verifier accepts builder output;
//! * modulo schedules satisfy every dependence mod II and never
//!   over-subscribe the reservation table;
//! * the greedy partition is total and the copy-inserted loop is fully
//!   operand-local;
//! * per-bank colouring never assigns one register to two overlapping
//!   ranges;
//! * and the big one — the partitioned, copy-inserted, rescheduled loop
//!   computes **bit-for-bit** the same arrays and live-outs as sequential
//!   execution of the original.

use proptest::prelude::*;
use rcg_vliw::prelude::*;
use vliw_ir::verify_loop;

/// One step of loop construction.
#[derive(Debug, Clone)]
enum Recipe {
    LoadX(u8),
    LoadY(u8),
    FAdd(u8, u8),
    FSub(u8, u8),
    FMul(u8, u8),
    FDiv(u8, u8),
    StoreY(u8, u8),
    AccumulateInto(u8),
    Const(u8),
}

fn recipe_strategy() -> impl Strategy<Value = Recipe> {
    prop_oneof![
        (0..4u8).prop_map(Recipe::LoadX),
        (0..4u8).prop_map(Recipe::LoadY),
        any::<(u8, u8)>().prop_map(|(a, b)| Recipe::FAdd(a, b)),
        any::<(u8, u8)>().prop_map(|(a, b)| Recipe::FSub(a, b)),
        any::<(u8, u8)>().prop_map(|(a, b)| Recipe::FMul(a, b)),
        any::<(u8, u8)>().prop_map(|(a, b)| Recipe::FDiv(a, b)),
        any::<(u8, u8)>().prop_map(|(a, b)| Recipe::StoreY(a, b)),
        any::<u8>().prop_map(Recipe::AccumulateInto),
        (0..16u8).prop_map(Recipe::Const),
    ]
}

/// Fold recipes through the builder. The float pool starts with two
/// live-ins, so operand picks (index mod pool len) always resolve.
fn build_loop(recipes: &[Recipe], trip: u32) -> Loop {
    let mut b = LoopBuilder::new("prop");
    let x = b.array("x", RegClass::Float, 8 * trip as usize + 16);
    let y = b.array("y", RegClass::Float, 8 * trip as usize + 16);
    let a0 = b.live_in_float_val("a0", 1.5);
    let a1 = b.live_in_float_val("a1", -0.75);
    let acc = b.live_in_float_val("acc", 0.0);
    let mut pool = vec![a0, a1];
    for r in recipes {
        let pick = |i: u8, pool: &[VReg]| pool[i as usize % pool.len()];
        match r {
            Recipe::LoadX(off) => pool.push(b.load(x, *off as i64, 5)),
            Recipe::LoadY(off) => pool.push(b.load(y, *off as i64 + 8, 5)),
            Recipe::FAdd(i, j) => {
                let (p, q) = (pick(*i, &pool), pick(*j, &pool));
                pool.push(b.fadd(p, q));
            }
            Recipe::FSub(i, j) => {
                let (p, q) = (pick(*i, &pool), pick(*j, &pool));
                pool.push(b.fsub(p, q));
            }
            Recipe::FMul(i, j) => {
                let (p, q) = (pick(*i, &pool), pick(*j, &pool));
                pool.push(b.fmul(p, q));
            }
            Recipe::FDiv(i, j) => {
                let (p, q) = (pick(*i, &pool), pick(*j, &pool));
                pool.push(b.fdiv(p, q));
            }
            Recipe::StoreY(i, slot) => {
                // Store slots 0..4 of the stride-5 lane; loads read slots
                // 8..12, so store→load dependences are loop-carried.
                let v = pick(*i, &pool);
                b.store(y, *slot as i64 % 4, 5, v);
            }
            Recipe::AccumulateInto(i) => {
                let v = pick(*i, &pool);
                b.fadd_into(acc, acc, v);
            }
            Recipe::Const(k) => pool.push(b.fconst_new(0.25 * (*k as f64 + 1.0))),
        }
    }
    b.live_out(acc);
    b.finish(trip)
}

fn machines_under_test() -> Vec<MachineDesc> {
    vec![
        MachineDesc::monolithic(8),
        MachineDesc::embedded(2, 2),
        MachineDesc::embedded(4, 1),
        MachineDesc::copy_unit(2, 2),
        MachineDesc::copy_unit(4, 2),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn builder_output_always_verifies(
        recipes in proptest::collection::vec(recipe_strategy(), 1..24),
        trip in 1u32..12,
    ) {
        let l = build_loop(&recipes, trip);
        prop_assert!(verify_loop(&l).is_ok());
    }

    #[test]
    fn ideal_modulo_schedule_is_legal_and_exact(
        recipes in proptest::collection::vec(recipe_strategy(), 1..20),
        trip in 1u32..10,
    ) {
        let l = build_loop(&recipes, trip);
        let m = MachineDesc::monolithic(8);
        let g = build_ddg(&l, &m.latencies);
        let p = SchedProblem::ideal(&l, &m);
        let s = schedule_loop(&p, &g, &ImsConfig::default()).unwrap();
        prop_assert!(verify_schedule(&p, &g, &s).is_ok());
        prop_assert!(check_equivalence(&l, &s, &m.latencies).is_ok());
    }

    #[test]
    fn partition_copyins_reschedule_preserve_semantics(
        recipes in proptest::collection::vec(recipe_strategy(), 1..20),
        trip in 1u32..8,
        machine_pick in 0usize..5,
    ) {
        let l = build_loop(&recipes, trip);
        let machine = machines_under_test().swap_remove(machine_pick);
        let cfg = PartitionConfig::default();

        let ideal_m = MachineDesc::monolithic(machine.issue_width());
        let ddg = build_ddg(&l, &machine.latencies);
        let ideal = schedule_loop(&SchedProblem::ideal(&l, &ideal_m), &ddg, &ImsConfig::default()).unwrap();
        let slack = compute_slack(&ddg, |op| machine.latencies.of(l.op(op).opcode) as i64);
        let rcg = build_rcg(&l, &ideal, &slack, &cfg);
        let part = assign_banks(&rcg, machine.n_clusters(), &cfg);

        // Totality: every register gets a bank in range.
        prop_assert_eq!(part.bank_of.len(), l.n_vregs());
        prop_assert!(part.bank_of.iter().all(|b| b.index() < machine.n_clusters()));

        let clustered = insert_copies(&l, &part);
        prop_assert!(verify_loop(&clustered.body).is_ok());
        prop_assert!(clustered.all_operands_local());

        let cddg = build_ddg(&clustered.body, &machine.latencies);
        let problem = SchedProblem::clustered(&clustered.body, &machine, &clustered.cluster_of);
        let sched = schedule_loop(&problem, &cddg, &ImsConfig::default()).unwrap();
        prop_assert!(verify_schedule(&problem, &cddg, &sched).is_ok());

        // The headline invariant: pipelined clustered execution is
        // bit-identical to sequential execution of the ORIGINAL loop.
        prop_assert!(check_equivalence(&clustered.body, &sched, &machine.latencies).is_ok());
        let orig = run_reference(&l);
        let rewritten = run_reference(&clustered.body);
        prop_assert_eq!(orig.memory, rewritten.memory);
    }

    #[test]
    fn coloring_is_always_valid(
        recipes in proptest::collection::vec(recipe_strategy(), 1..16),
        trip in 1u32..8,
    ) {
        use rcg_vliw::regalloc::validate_allocation;
        let l = build_loop(&recipes, trip);
        let machine = MachineDesc::embedded(2, 2);
        let cfg = PartitionConfig::default();
        let ideal_m = MachineDesc::monolithic(4);
        let ddg = build_ddg(&l, &machine.latencies);
        let ideal = schedule_loop(&SchedProblem::ideal(&l, &ideal_m), &ddg, &ImsConfig::default()).unwrap();
        let slack = compute_slack(&ddg, |op| machine.latencies.of(l.op(op).opcode) as i64);
        let rcg = build_rcg(&l, &ideal, &slack, &cfg);
        let part = assign_banks(&rcg, 2, &cfg);
        let clustered = insert_copies(&l, &part);
        let cddg = build_ddg(&clustered.body, &machine.latencies);
        let problem = SchedProblem::clustered(&clustered.body, &machine, &clustered.cluster_of);
        let sched = schedule_loop(&problem, &cddg, &ImsConfig::default()).unwrap();
        let alloc = allocate(&clustered.body, &cddg, &sched, &clustered.vreg_bank, &machine);
        prop_assert!(validate_allocation(
            &clustered.body, &cddg, &sched, &clustered.vreg_bank, &machine, &alloc
        ));
    }

    #[test]
    fn reference_execution_is_deterministic(
        recipes in proptest::collection::vec(recipe_strategy(), 1..20),
        trip in 0u32..10,
    ) {
        let l = build_loop(&recipes, trip);
        let a = run_reference(&l);
        let b = run_reference(&l);
        prop_assert_eq!(a, b);
    }
}
