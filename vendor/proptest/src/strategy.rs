//! The [`Strategy`] trait and the primitive strategies.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type (upstream's `Strategy`,
/// without shrinking).
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values through `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

/// Strategy yielding a constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among boxed strategies (what `prop_oneof!` builds).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V: Debug> Union<V> {
    /// Build from the individual arms; panics if empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy over empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy over empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy over empty range");
                // 53 uniform mantissa bits → u in [0, 1); never yields `end`.
                let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + (u as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy over empty range");
                let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                lo + (u as $t) * (hi - lo)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
}

/// Types with a canonical "any value" strategy (upstream's `Arbitrary`).
pub trait Arbitrary: Debug + Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_tuple {
    ($(($($s:ident),+);)*) => {$(
        impl<$($s: Arbitrary),+> Arbitrary for ($($s,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($s::arbitrary(rng),)+)
            }
        }
    )*};
}

impl_arbitrary_tuple! {
    (A, B);
    (A, B, C);
    (A, B, C, D);
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Strategy for any value of `T` (upstream's `any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new_for("ranges");
        for _ in 0..500 {
            let v = (3u32..9).sample(&mut rng);
            assert!((3..9).contains(&v));
            let w = (-5i64..=5).sample(&mut rng);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn map_union_and_tuples_compose() {
        let mut rng = TestRng::new_for("compose");
        let s = crate::prop_oneof![(0u8..10).prop_map(|x| x as u32), 100u32..110, Just(7u32),];
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!(v < 10 || (100..110).contains(&v) || v == 7);
            let (a, b) = (0u8..4, 10u8..14).sample(&mut rng);
            assert!(a < 4 && (10..14).contains(&b));
        }
    }

    #[test]
    fn vec_and_select() {
        let mut rng = TestRng::new_for("vecsel");
        let vs = crate::collection::vec(0u8..5, 2..6);
        for _ in 0..100 {
            let v = vs.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
            let pick = crate::sample::select(vec!['a', 'b', 'c']).sample(&mut rng);
            assert!(['a', 'b', 'c'].contains(&pick));
        }
    }
}
