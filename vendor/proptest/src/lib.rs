//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The container has no crates.io access, so the real proptest cannot be
//! fetched. This mini-harness keeps the property tests *runnable* with the
//! same source text: `proptest!`, `prop_assert!`, `prop_assert_eq!`,
//! `prop_oneof!`, `any::<T>()`, `Just`, integer-range and tuple strategies,
//! `collection::vec`, and `sample::select`.
//!
//! Differences from upstream, by design:
//! * sampling is plain uniform — no bias toward edge cases, no shrinking;
//! * the RNG is seeded from the test's name, so every run of a given test
//!   replays the same deterministic case sequence;
//! * on failure, the offending case's inputs are printed before the panic
//!   propagates (in place of upstream's persisted regression files).

pub mod strategy;

pub mod test_runner {
    //! Runner configuration, mirroring `proptest::test_runner`.

    /// Subset of upstream's `ProptestConfig`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
        /// Accepted for source compatibility with upstream configs; this
        /// harness never shrinks, so the bound is unused.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_shrink_iters: 0,
            }
        }
    }

    /// An explicitly failed or rejected test case (upstream's
    /// `TestCaseError`), for property bodies that bail with `?`.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property is violated.
        Fail(String),
        /// The inputs don't apply; the case is skipped without counting as
        /// a failure.
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A rejection with the given message.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
                TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
            }
        }
    }

    /// Deterministic test RNG (SplitMix64 over a name-derived seed).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from the property name.
        pub fn new_for(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0);
            self.next_u64() % bound
        }
    }
}

pub mod collection {
    //! Collection strategies, mirroring `proptest::collection`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start).max(1);
            let n = self.len.start + rng.below(span as u64) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies, mirroring `proptest::sample`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly from a fixed list.
    pub fn select<T: Clone + std::fmt::Debug>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select over an empty list");
        Select { items }
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        items: Vec<T>,
    }

    impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.items[rng.below(self.items.len() as u64) as usize].clone()
        }
    }
}

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude::*`.

    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Alias module so `prop::collection::vec` / `prop::sample::select`
    /// resolve as they do upstream.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Run each property with inputs drawn from the given strategies.
///
/// Supports the upstream surface used in this workspace: an optional
/// `#![proptest_config(expr)]` header and `fn name(pat in strategy, ...)`
/// properties (annotated with `#[test]` inside the macro, as upstream
/// requires).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] — not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::new_for(stringify!($name));
                for __case in 0..cfg.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, "),+),
                        $(&$arg),+
                    );
                    // The body runs inside a closure returning
                    // `Result<(), TestCaseError>` so upstream-style `?`
                    // bail-outs type-check; a plain body falls through to
                    // the trailing `Ok(())`.
                    let __outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let __run = ||
                            -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        };
                        __run()
                    }));
                    match __outcome {
                        Err(panic) => {
                            eprintln!(
                                "proptest case {}/{} of `{}` failed with inputs: {}",
                                __case + 1, cfg.cases, stringify!($name), __inputs
                            );
                            std::panic::resume_unwind(panic);
                        }
                        Ok(Err($crate::test_runner::TestCaseError::Fail(reason))) => {
                            panic!(
                                "proptest case {}/{} of `{}` failed: {} (inputs: {})",
                                __case + 1, cfg.cases, stringify!($name), reason, __inputs
                            );
                        }
                        Ok(Err($crate::test_runner::TestCaseError::Reject(_))) | Ok(Ok(())) => {}
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Choose uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}
