//! Offline stand-in for `serde`.
//!
//! This container has no network access to crates.io, so the workspace
//! vendors a minimal API-compatible surface: the `Serialize` / `Deserialize`
//! derive macros (which expand to nothing) and empty marker traits of the
//! same names so `use serde::{Serialize, Deserialize}` resolves whether the
//! import is consumed as a trait or as a derive.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
