//! Offline stand-in for the slice of `rayon` this workspace uses:
//! `slice.par_iter().map(f).collect::<Vec<_>>()`.
//!
//! Unlike most of the vendored stubs this one is not a no-op: `collect`
//! fans the mapped closure out over `std::thread::scope` with one contiguous
//! chunk per available core, preserving input order — corpus evaluation
//! stays embarrassingly parallel without the real rayon dependency.

/// Import surface mirroring `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{FromParMap, IntoParallelRefIterator, ParIter, ParMap};
}

/// `.par_iter()` entry point for slice-like containers.
pub trait IntoParallelRefIterator<'a> {
    /// Element type yielded by reference.
    type Item: Sync + 'a;
    /// Borrow the elements as a parallel iterator.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Borrowed parallel iterator over a slice.
#[derive(Debug, Clone, Copy)]
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map each element through `f` (executed at `collect` time).
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped parallel iterator, executed by [`ParMap::collect`].
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Run the map across scoped threads and gather results in input order.
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
        C: FromParMap<R>,
    {
        let n = self.items.len();
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n.max(1));
        let mut out: Vec<R> = Vec::with_capacity(n);
        if threads <= 1 || n <= 1 {
            out.extend(self.items.iter().map(&self.f));
        } else {
            let chunk = n.div_ceil(threads);
            let f = &self.f;
            let parts: Vec<Vec<R>> = std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .items
                    .chunks(chunk)
                    .map(|c| scope.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            for p in parts {
                out.extend(p);
            }
        }
        C::from_par_map(out)
    }
}

/// Containers `ParMap::collect` can produce (stand-in for
/// `FromParallelIterator`).
pub trait FromParMap<R> {
    /// Build the container from the in-order mapped results.
    fn from_par_map(items: Vec<R>) -> Self;
}

impl<R> FromParMap<R> for Vec<R> {
    fn from_par_map(items: Vec<R>) -> Self {
        items
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn parallel_map_preserves_order() {
        let xs: Vec<u64> = (0..10_000).collect();
        let ys: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(ys.len(), xs.len());
        assert!(ys.iter().enumerate().all(|(i, &y)| y == 2 * i as u64));
    }

    #[test]
    fn works_on_empty_and_single() {
        let e: Vec<u32> = Vec::new();
        let out: Vec<u32> = e.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [7u32];
        let out: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }
}
