//! Offline stand-in for the slice of `rayon` this workspace uses:
//! `slice.par_iter().map(f).collect::<Vec<_>>()`.
//!
//! Unlike most of the vendored stubs this one is not a no-op: `collect`
//! fans the mapped closure out over `std::thread::scope`, preserving input
//! order — corpus evaluation stays embarrassingly parallel without the real
//! rayon dependency. Work is handed out one index at a time from a shared
//! atomic counter rather than in contiguous per-thread chunks: corpus items
//! have wildly different costs (a 4-op copy loop vs a 160-op unrolled
//! stencil), and static chunking left whole cores idle behind whichever
//! chunk drew the expensive loops.

/// Import surface mirroring `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{FromParMap, IntoParallelRefIterator, ParIter, ParMap};
}

/// `.par_iter()` entry point for slice-like containers.
pub trait IntoParallelRefIterator<'a> {
    /// Element type yielded by reference.
    type Item: Sync + 'a;
    /// Borrow the elements as a parallel iterator.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Borrowed parallel iterator over a slice.
#[derive(Debug, Clone, Copy)]
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map each element through `f` (executed at `collect` time).
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped parallel iterator, executed by [`ParMap::collect`].
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Run the map across scoped threads and gather results in input order.
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
        C: FromParMap<R>,
    {
        let n = self.items.len();
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n.max(1));
        let mut out: Vec<R> = Vec::with_capacity(n);
        if threads <= 1 || n <= 1 {
            out.extend(self.items.iter().map(&self.f));
        } else {
            // Dynamic work distribution: each worker repeatedly claims the
            // next unprocessed index, so expensive items never serialise
            // behind one unlucky thread's static chunk.
            let next = std::sync::atomic::AtomicUsize::new(0);
            let items = self.items;
            let f = &self.f;
            let parts: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        let next = &next;
                        scope.spawn(move || {
                            let mut local = Vec::new();
                            loop {
                                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                if i >= items.len() {
                                    return local;
                                }
                                local.push((i, f(&items[i])));
                            }
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            // Reassemble in input order.
            let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
            for part in parts {
                for (i, r) in part {
                    debug_assert!(slots[i].is_none());
                    slots[i] = Some(r);
                }
            }
            out.extend(slots.into_iter().map(|s| s.expect("every index claimed")));
        }
        C::from_par_map(out)
    }
}

/// Containers `ParMap::collect` can produce (stand-in for
/// `FromParallelIterator`).
pub trait FromParMap<R> {
    /// Build the container from the in-order mapped results.
    fn from_par_map(items: Vec<R>) -> Self;
}

impl<R> FromParMap<R> for Vec<R> {
    fn from_par_map(items: Vec<R>) -> Self {
        items
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn parallel_map_preserves_order() {
        let xs: Vec<u64> = (0..10_000).collect();
        let ys: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(ys.len(), xs.len());
        assert!(ys.iter().enumerate().all(|(i, &y)| y == 2 * i as u64));
    }

    #[test]
    fn unbalanced_workloads_cover_every_index_once() {
        // Item cost varies by 1000×; dynamic distribution must still produce
        // every result exactly once, in order.
        let xs: Vec<u64> = (0..257).collect();
        let ys: Vec<u64> = xs
            .par_iter()
            .map(|&x| {
                let reps = if x % 7 == 0 { 10_000 } else { 10 };
                (0..reps).fold(x, |a, _| std::hint::black_box(a) | x)
            })
            .collect();
        assert_eq!(ys, xs);
    }

    #[test]
    fn works_on_empty_and_single() {
        let e: Vec<u32> = Vec::new();
        let out: Vec<u32> = e.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [7u32];
        let out: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }
}
