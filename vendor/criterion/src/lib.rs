//! Offline stand-in for the subset of `criterion` the workspace benches use:
//! `criterion_group!` / `criterion_main!`, `Criterion::bench_function`,
//! `benchmark_group` + `bench_with_input`, `BenchmarkId`, and `Bencher::iter`.
//!
//! Instead of criterion's statistical engine, each benchmark runs a short
//! warm-up, then a fixed measurement loop, and prints mean wall-clock time
//! per iteration. Good enough to (a) keep the bench targets compiling
//! offline and (b) give honest relative numbers; swap the real criterion
//! back in for publication-grade statistics.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-implementation of `criterion::black_box` (std's is still unstable on
/// the oldest toolchain this builds on; a volatile read is the classic trick).
pub fn black_box<T>(x: T) -> T {
    unsafe {
        let ret = std::ptr::read_volatile(&x);
        std::mem::forget(x);
        ret
    }
}

/// Benchmark identifier, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the closure given to `bench_function` / `bench_with_input`.
pub struct Bencher {
    /// Mean time per iteration, recorded by [`Bencher::iter`].
    mean: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine`, storing the mean per-iteration duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until ~50ms spent or 10 iterations, whichever first.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_iters < 10 && warm_start.elapsed() < Duration::from_millis(50) {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start
            .elapsed()
            .checked_div(warm_iters as u32)
            .unwrap_or_default();
        // Measurement: target ~200ms, between 5 and 1000 iterations.
        let target = Duration::from_millis(200);
        let iters = if per_iter.is_zero() {
            1000
        } else {
            (target.as_nanos() / per_iter.as_nanos().max(1)).clamp(5, 1000) as u64
        };
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.mean = start.elapsed() / iters as u32;
        self.iters = iters;
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }
}

/// A benchmark group, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark over a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), &mut |b: &mut Bencher| {
            f(b, input)
        });
        self
    }

    /// Run one named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), &mut f);
        self
    }

    /// End the group (upstream flushes reports here; nothing to flush).
    pub fn finish(self) {}
}

fn run_one(name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        mean: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    println!(
        "bench {name:<60} {:>12.3} µs/iter ({} iters)",
        b.mean.as_secs_f64() * 1e6,
        b.iters
    );
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
