//! Offline stand-in for the `rand 0.8` API surface this workspace uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and `Rng::gen_range` over
//! half-open and inclusive integer ranges.
//!
//! The generator is SplitMix64 — deterministic, seedable, and statistically
//! plenty for corpus generation. It intentionally does NOT match upstream
//! `StdRng`'s stream; the corpus is simply a different (equally valid)
//! deterministic sample.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types `Rng::gen_range` accepts.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one value uniformly from the range.
    fn sample_from(self, rng: &mut dyn RngCore) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = rng.next_u64() as u128 % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = rng.next_u64() as u128 % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience methods over any [`RngCore`] (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = a.gen_range(3..17u32);
            assert_eq!(x, b.gen_range(3..17u32));
            assert!((3..17).contains(&x));
            let y = a.gen_range(5..=9usize);
            assert_eq!(y, b.gen_range(5..=9usize));
            assert!((5..=9).contains(&y));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u32> = (0..16).map(|_| a.gen_range(0..1000u32)).collect();
        let vb: Vec<u32> = (0..16).map(|_| b.gen_range(0..1000u32)).collect();
        assert_ne!(va, vb);
    }
}
