//! Offline stand-in for `serde_derive`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as metadata;
//! nothing serialises at runtime in the offline build, so both derives
//! expand to an empty token stream (while still accepting `#[serde(...)]`
//! helper attributes).

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
