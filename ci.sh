#!/usr/bin/env bash
# Local CI: formatting, lints, build, and the full test suite — everything
# a change must pass before it lands. Runs fully offline (all third-party
# dependencies are vendored under vendor/).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> canonical encoders stay free of hash-ordered collections"
# Files on the canonical-output path (the alpha-normal form, structural
# hashes, cache-key preimages, wire/disk encodings) must never iterate a
# HashMap/HashSet: iteration order varies across runs and would make
# "canonical" output nondeterministic. Keyed lookups belong in BTreeMap or
# pre-sorted vectors here.
CANON_ENCODER_PATHS=(
    crates/ir/src/printer.rs
    crates/normal/src
    crates/analysis/src/diag.rs
    crates/serve/src/envelope.rs
    crates/serve/src/json.rs
    crates/serve/src/hash.rs
)
if grep -rn 'HashMap\|HashSet' "${CANON_ENCODER_PATHS[@]}"; then
    echo "error: HashMap/HashSet found on a canonical-encoder path (see above);"
    echo "use BTreeMap/BTreeSet or sorted vectors for deterministic output."
    exit 1
fi

echo "==> governed solver loops charge the resource pool"
# The exact and joint solvers are the only unbounded-memory paths in the
# serve tier; their governed entry points must charge working sets against
# the server's resource pool and poll the budget between expansions, or
# vliw-served's --mem-budget silently stops meaning anything.
for f in crates/exact/src/search.rs crates/joint/src/solver.rs; do
    grep -q '\.charge(' "$f" \
        || { echo "error: $f no longer charges the resource pool"; exit 1; }
    grep -q 'exceeded()' "$f" \
        || { echo "error: $f no longer polls the resource budget"; exit 1; }
done

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo build --release -p vliw-bench --all-targets (bench + baseline runner)"
# vliw-bench is outside default-members; build its lib, benches and the
# bench_scheduler baseline bin so perf-tracking code can't silently rot.
cargo build --release -p vliw-bench --all-targets

echo "==> cargo test"
cargo test -q

echo "==> vliw-lint (cross-stage sanitizer over three loop families)"
cargo run --release --quiet --bin vliw-lint -- \
    --families daxpy,dot,stencil --variants 2 --machines embedded

echo "==> vliw-lint --canon (alpha-canonicalization audit: NRM001-003)"
cargo run --release --quiet --bin vliw-lint -- \
    --canon --families daxpy,dot,stencil,rec1 --variants 3 \
    | grep -q ' 0 error(s)'

echo "==> vliw-serve smoke test (TCP round-trip, repeat served from cache)"
SMOKE_DIR=$(mktemp -d)
cleanup_smoke() {
    [ -n "${SERVED_PID:-}" ] && kill "$SERVED_PID" 2>/dev/null || true
    [ -n "${PEER1_PID:-}" ] && kill "$PEER1_PID" 2>/dev/null || true
    [ -n "${PEER2_PID:-}" ] && kill "$PEER2_PID" 2>/dev/null || true
    rm -rf "$SMOKE_DIR"
}
trap cleanup_smoke EXIT
target/release/vliw-served --addr 127.0.0.1:0 --cache-dir "$SMOKE_DIR/cache" \
    > "$SMOKE_DIR/served.log" &
SERVED_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^vliw-served listening on //p' "$SMOKE_DIR/served.log")
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "vliw-served did not come up"; cat "$SMOKE_DIR/served.log"; exit 1; }
target/release/vliw-client --addr "$ADDR" --compile --gen 0 --repeat 2 \
    | tee "$SMOKE_DIR/client.log"
grep -q 'compile\[0\] served=compiled' "$SMOKE_DIR/client.log"
grep -q 'compile\[1\] served=cache' "$SMOKE_DIR/client.log"
# An isomorphic renaming of the warmed loop (fresh exact key, same semantic
# key) must be served from the canonical alias, not recompiled.
target/release/vliw-client --addr "$ADDR" --compile --gen-variant 0:7 \
    | tee "$SMOKE_DIR/client-variant.log"
grep -q 'compile\[0\] served=cache' "$SMOKE_DIR/client-variant.log"
target/release/vliw-client --addr "$ADDR" --stats --shutdown
wait "$SERVED_PID"
SERVED_PID=""

echo "==> vliw-serve concurrency smoke (256 connections on 2 workers, zero dropped)"
# The reactor core must hold 256 simultaneous connections on a 2-worker
# compile pool and serve one request on each with nothing rejected, timed
# out, or errored.
target/release/vliw-served --addr 127.0.0.1:0 --no-disk --workers 2 \
    > "$SMOKE_DIR/conc.log" &
SERVED_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^vliw-served listening on //p' "$SMOKE_DIR/conc.log")
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "vliw-served did not come up"; cat "$SMOKE_DIR/conc.log"; exit 1; }
target/release/vliw-client --addr "$ADDR" --compile --gen 0 --concurrent 256 \
    | tee "$SMOKE_DIR/conc-client.log"
grep -q '^concurrent n=256 ok=256 errors=0 retries=0$' "$SMOKE_DIR/conc-client.log"
target/release/vliw-client --addr "$ADDR" --stats | tee "$SMOKE_DIR/conc-stats.log"
grep -q ' timeouts=0 ' "$SMOKE_DIR/conc-stats.log"
grep -q ' errors=0 ' "$SMOKE_DIR/conc-stats.log"
grep -q ' conns_rejected=0 ' "$SMOKE_DIR/conc-stats.log"
ACCEPTS=$(sed -n 's/.* accepts=\([0-9]*\).*/\1/p' "$SMOKE_DIR/conc-stats.log")
[ "${ACCEPTS:-0}" -ge 257 ] || { echo "expected >=257 accepts, got ${ACCEPTS:-none}"; exit 1; }
target/release/vliw-client --addr "$ADDR" --shutdown
wait "$SERVED_PID"
SERVED_PID=""

echo "==> vliw-serve sharded smoke test (two peers, batch routing, failover)"
serve_peer() { # $1 = cache dir, $2 = log file
    target/release/vliw-served --addr 127.0.0.1:0 --cache-dir "$1" > "$2" &
}
peer_addr() { # $1 = log file
    local a=""
    for _ in $(seq 1 100); do
        a=$(sed -n 's/^vliw-served listening on //p' "$1")
        [ -n "$a" ] && break
        sleep 0.1
    done
    [ -n "$a" ] || { echo "sharded peer did not come up" >&2; cat "$1" >&2; exit 1; }
    echo "$a"
}
serve_peer "$SMOKE_DIR/shard1" "$SMOKE_DIR/peer1.log"; PEER1_PID=$!
serve_peer "$SMOKE_DIR/shard2" "$SMOKE_DIR/peer2.log"; PEER2_PID=$!
PEERS="$(peer_addr "$SMOKE_DIR/peer1.log"),$(peer_addr "$SMOKE_DIR/peer2.log")"
# Cold sweep: every entry compiles, routed across both peers by key.
target/release/vliw-client --peers "$PEERS" --batch --gen-range 0:32 \
    > "$SMOKE_DIR/shard-cold.log"
grep -q 'batch\[0\] served=compiled' "$SMOKE_DIR/shard-cold.log"
! grep -q 'served=cache' "$SMOKE_DIR/shard-cold.log"
# Warm sweep: same batch, now every entry is a cache hit and nothing reroutes.
target/release/vliw-client --peers "$PEERS" --batch --gen-range 0:32 \
    > "$SMOKE_DIR/shard-warm.log"
grep -q 'batch\[0\] served=cache' "$SMOKE_DIR/shard-warm.log"
! grep -q 'served=compiled' "$SMOKE_DIR/shard-warm.log"
grep -q '^failovers=0$' "$SMOKE_DIR/shard-warm.log"
# Renamed variant of a warmed loop: requests route by semantic key, so the
# variant lands on the peer holding its class representative's alias and
# is served from cache across the wire.
target/release/vliw-client --peers "$PEERS" --compile --gen-variant 3:11 \
    > "$SMOKE_DIR/shard-variant.log"
grep -q 'compile\[0\] served=cache' "$SMOKE_DIR/shard-variant.log"
# Aggregate stats merge both peers' counters.
target/release/vliw-client --peers "$PEERS" --stats --aggregate \
    > "$SMOKE_DIR/shard-stats.log"
grep -q '^aggregate hits=' "$SMOKE_DIR/shard-stats.log"
grep -q '^aggregate peers=2 reporting=2' "$SMOKE_DIR/shard-stats.log"
# Kill one peer hard: its keys fail over to the ring successor and the
# batch still fully succeeds.
kill -9 "$PEER1_PID" 2>/dev/null
wait "$PEER1_PID" 2>/dev/null || true
PEER1_PID=""
target/release/vliw-client --peers "$PEERS" --batch --gen-range 0:32 \
    > "$SMOKE_DIR/shard-failover.log"
! grep -q '] error:' "$SMOKE_DIR/shard-failover.log"
grep -Eq '^failovers=[1-9][0-9]*$' "$SMOKE_DIR/shard-failover.log"
target/release/vliw-client --peers "$PEERS" --shutdown \
    | grep -q 'shutdown acknowledged by 1 peer(s)'
wait "$PEER2_PID" 2>/dev/null || true
PEER2_PID=""

echo "==> repro --cache (cached corpus driver, truncated run)"
target/release/repro --table1 --loops 8 --cache --cache-dir "$SMOKE_DIR/repro-cache" \
    | grep -q '^cache: hits='

echo "==> repro --gap (optimality-gap smoke: exact closes, never loses to greedy)"
target/release/repro --gap --loops 40 --budget-ms 2000 > "$SMOKE_DIR/gap.log"
grep -q '^all_optimal=true exact<=greedy=true budget_exceeded=0$' "$SMOKE_DIR/gap.log"

echo "==> repro --joint-gap (joint solver smoke: every loop closed, II never above greedy)"
target/release/repro --joint-gap --loops 40 --budget-ms 4000 > "$SMOKE_DIR/joint-gap.log"
grep -q '^all_closed=true joint_ii<=greedy_ii=true' "$SMOKE_DIR/joint-gap.log"
# The 13–24-vreg scaling table under the 500 ms interactive budget: every
# solve classified (closed/bounded/budget-exceeded sum to the slice) and at
# least 60% closed.
grep -Eq '^closed_pct=[0-9.]+ bounds_honest=true$' "$SMOKE_DIR/joint-gap.log"
CLOSED_PCT=$(sed -n 's/^closed_pct=\([0-9.]*\) .*/\1/p' "$SMOKE_DIR/joint-gap.log")
awk -v p="$CLOSED_PCT" 'BEGIN { exit !(p >= 60.0) }' \
    || { echo "joint scaling closed_pct=$CLOSED_PCT below the 60% floor"; exit 1; }

echo "==> vliw-serve joint anytime smoke (under-budgeted large loop, typed truncation)"
# A 25-vreg daxpy with a deliberate 1 ms joint budget: the server must
# answer with the incumbent and the proven lower bound — a typed reply, not
# a timeout and not a dropped connection.
target/release/vliw-served --addr 127.0.0.1:0 --no-disk > "$SMOKE_DIR/joint-served.log" &
SERVED_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^vliw-served listening on //p' "$SMOKE_DIR/joint-served.log")
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "vliw-served did not come up"; cat "$SMOKE_DIR/joint-served.log"; exit 1; }
printf 'partitioner joint 1\n' > "$SMOKE_DIR/joint.cfg"
target/release/vliw-client --addr "$ADDR" --compile --gen 6 \
    --config-file "$SMOKE_DIR/joint.cfg" | tee "$SMOKE_DIR/joint-client.log"
grep -Eq 'compile\[0\] served=compiled .*joint_ii=[0-9]+ joint_lb=[0-9]+ joint_optimal=false' \
    "$SMOKE_DIR/joint-client.log"
target/release/vliw-client --addr "$ADDR" --stats | tee "$SMOKE_DIR/joint-stats.log"
grep -q ' joint_truncated=1 ' "$SMOKE_DIR/joint-stats.log"
grep -q ' timeouts=0 ' "$SMOKE_DIR/joint-stats.log"
grep -q ' errors=0 ' "$SMOKE_DIR/joint-stats.log"
target/release/vliw-client --addr "$ADDR" --shutdown
wait "$SERVED_PID"
SERVED_PID=""

echo "==> vliw-serve overload smoke (heavy flood shed and retried, interactive unharmed)"
# Governor contract under deliberate overload: a 1-worker heavy lane with a
# depth:1 shed policy, flooded by three clients streaming 300 ms joint
# solves. At least one request must be shed with a typed retryable error and
# then retried to completion by the client's backoff loop, every heavy
# request must eventually be served, and an interactive client compiling
# mid-flood must never be shed and never error.
target/release/vliw-served --addr 127.0.0.1:0 --no-disk --workers 2 \
    --heavy-lane-workers 1 --shed-policy depth:1 --mem-budget 64m \
    > "$SMOKE_DIR/gov.log" &
SERVED_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^vliw-served listening on //p' "$SMOKE_DIR/gov.log")
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "vliw-served did not come up"; cat "$SMOKE_DIR/gov.log"; exit 1; }
# Distinct budgets per client defeat the compile cache, so each stream's
# first request is a real 300 ms solve contending for the single heavy slot.
HEAVY_PIDS=()
for i in 1 2 3; do
    printf 'partitioner joint %d\n' "$((300 + i))" > "$SMOKE_DIR/gov-joint$i.cfg"
    target/release/vliw-client --addr "$ADDR" --compile --gen 6 \
        --config-file "$SMOKE_DIR/gov-joint$i.cfg" --repeat 3 --max-retries 12 \
        > "$SMOKE_DIR/gov-heavy$i.log" 2>&1 &
    HEAVY_PIDS+=("$!")
done
# Interactive traffic in the middle of the flood: the pool keeps one worker
# answerable to the interactive lane, so all 20 compiles must be served
# without a single shed retry.
target/release/vliw-client --addr "$ADDR" --compile --gen 0 --repeat 20 \
    --max-retries 12 | tee "$SMOKE_DIR/gov-inter.log"
[ "$(grep -c 'served=' "$SMOKE_DIR/gov-inter.log")" -eq 20 ] \
    || { echo "interactive client lost requests under flood"; exit 1; }
grep -q '^retries=0$' "$SMOKE_DIR/gov-inter.log" \
    || { echo "interactive client was shed under flood"; exit 1; }
for pid in "${HEAVY_PIDS[@]}"; do
    wait "$pid" \
        || { echo "heavy client exhausted its retry budget"; cat "$SMOKE_DIR"/gov-heavy*.log; exit 1; }
done
for i in 1 2 3; do
    [ "$(grep -c 'served=' "$SMOKE_DIR/gov-heavy$i.log")" -eq 3 ] \
        || { echo "heavy client $i did not complete"; cat "$SMOKE_DIR/gov-heavy$i.log"; exit 1; }
done
GOV_RETRIES=$(sed -n 's/^retries=\([0-9]*\)$/\1/p' "$SMOKE_DIR"/gov-heavy*.log \
    | awk '{ s += $1 } END { print s + 0 }')
[ "${GOV_RETRIES:-0}" -ge 1 ] \
    || { echo "expected >=1 typed shed retry, got ${GOV_RETRIES:-0}"; cat "$SMOKE_DIR"/gov-heavy*.log; exit 1; }
target/release/vliw-client --addr "$ADDR" --shutdown
wait "$SERVED_PID"
SERVED_PID=""

echo "CI OK"
