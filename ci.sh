#!/usr/bin/env bash
# Local CI: formatting, lints, build, and the full test suite — everything
# a change must pass before it lands. Runs fully offline (all third-party
# dependencies are vendored under vendor/).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo build --release -p vliw-bench --all-targets (bench + baseline runner)"
# vliw-bench is outside default-members; build its lib, benches and the
# bench_scheduler baseline bin so perf-tracking code can't silently rot.
cargo build --release -p vliw-bench --all-targets

echo "==> cargo test"
cargo test -q

echo "==> vliw-lint (cross-stage sanitizer over three loop families)"
cargo run --release --quiet --bin vliw-lint -- \
    --families daxpy,dot,stencil --variants 2 --machines embedded

echo "CI OK"
