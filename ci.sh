#!/usr/bin/env bash
# Local CI: formatting, lints, build, and the full test suite — everything
# a change must pass before it lands. Runs fully offline (all third-party
# dependencies are vendored under vendor/).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo build --release -p vliw-bench --all-targets (bench + baseline runner)"
# vliw-bench is outside default-members; build its lib, benches and the
# bench_scheduler baseline bin so perf-tracking code can't silently rot.
cargo build --release -p vliw-bench --all-targets

echo "==> cargo test"
cargo test -q

echo "==> vliw-lint (cross-stage sanitizer over three loop families)"
cargo run --release --quiet --bin vliw-lint -- \
    --families daxpy,dot,stencil --variants 2 --machines embedded

echo "==> vliw-serve smoke test (TCP round-trip, repeat served from cache)"
SMOKE_DIR=$(mktemp -d)
cleanup_smoke() {
    [ -n "${SERVED_PID:-}" ] && kill "$SERVED_PID" 2>/dev/null || true
    rm -rf "$SMOKE_DIR"
}
trap cleanup_smoke EXIT
target/release/vliw-served --addr 127.0.0.1:0 --cache-dir "$SMOKE_DIR/cache" \
    > "$SMOKE_DIR/served.log" &
SERVED_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^vliw-served listening on //p' "$SMOKE_DIR/served.log")
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "vliw-served did not come up"; cat "$SMOKE_DIR/served.log"; exit 1; }
target/release/vliw-client --addr "$ADDR" --compile --gen 0 --repeat 2 \
    | tee "$SMOKE_DIR/client.log"
grep -q 'compile\[0\] served=compiled' "$SMOKE_DIR/client.log"
grep -q 'compile\[1\] served=cache' "$SMOKE_DIR/client.log"
target/release/vliw-client --addr "$ADDR" --stats --shutdown
wait "$SERVED_PID"
SERVED_PID=""

echo "==> repro --cache (cached corpus driver, truncated run)"
target/release/repro --table1 --loops 8 --cache --cache-dir "$SMOKE_DIR/repro-cache" \
    | grep -q '^cache: hits='

echo "CI OK"
